package tensor

import (
	"fmt"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// parallelFlopCutoff is the minimum multiply-add count (m·k·n) at which the
// matmul kernels split their output rows across workers. Below it the cost
// of spawning and joining goroutines exceeds the arithmetic itself (the
// SmallCNN per-batch matmuls sit under this line on purpose). Each output
// row is computed by exactly one worker with the same inner-loop order as
// the serial kernel, so results are bit-identical for any worker count.
const parallelFlopCutoff = 1 << 17

// parallelRows reports whether an m-row kernel with work total multiply-adds
// should run row-blocked across workers.
func parallelRows(m, work int) bool {
	return m > 1 && work >= parallelFlopCutoff && parallel.Workers() > 1
}

// MatMul returns a·b for 2-D tensors a (m×k) and b (k×n). The result is a
// freshly allocated m×n tensor. The inner loops are ordered i-k-j so the
// innermost traversal is contiguous in both b and the destination, which is
// the standard cache-friendly layout for row-major matrices.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's buffer. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matmulInto(dst.Data, a.Data, b.Data, m, k, n)
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	return m, k, b.Dim(1)
}

// matmulInto accumulates a (m×k) times b (k×n) into dst (m×n). dst must be
// zeroed by the caller (New returns zeroed storage). Large products are
// split over contiguous row blocks; each block runs the identical serial
// kernel, so the parallel result matches the serial one bit for bit.
func matmulInto(dst, a, b []float64, m, k, n int) {
	if parallelRows(m, m*k*n) {
		parallel.ForBlocks(m, func(lo, hi int) {
			matmulRows(dst, a, b, lo, hi, k, n)
		})
		return
	}
	matmulRows(dst, a, b, 0, m, k, n)
}

// matmulRows computes output rows [lo,hi) of the m×n product.
func matmulRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a·bᵀ for a (m×k) and b (n×k). Used by the dense and
// conv backward passes, avoiding an explicit transpose allocation.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, _, n := checkMatMulTransB(a, b)
	out := New(m, n)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ for a (m×k) and b (n×k), reusing
// dst's buffer. dst must be m×n; every cell is overwritten. The kernel and
// its parallel row-blocking are identical to MatMulTransB, so the result is
// bit-identical to the allocating variant at any worker count.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransB(a, b)
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	if parallelRows(m, m*k*n) {
		parallel.ForBlocks(m, func(lo, hi int) {
			matmulTransBRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
		})
		return
	}
	matmulTransBRows(dst.Data, a.Data, b.Data, 0, m, k, n)
}

func checkMatMulTransB(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.Dim(0), a.Dim(1)
	n = b.Dim(0)
	if b.Dim(1) != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.shape, b.shape))
	}
	return m, k, n
}

// matmulTransBRows computes output rows [lo,hi) of a·bᵀ.
func matmulTransBRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
}

// MatMulTransA returns aᵀ·b for a (k×m) and b (k×n). Used to compute weight
// gradients without materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	m, _, n := checkMatMulTransA(a, b)
	out := New(m, n)
	matMulTransAAccum(out, a, b)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b for a (k×m) and b (k×n), reusing
// dst's buffer. dst must be m×n; it is zeroed first because the kernel
// accumulates. Accumulation order matches MatMulTransA exactly, so the
// result is bit-identical to the allocating variant at any worker count.
func MatMulTransAInto(dst, a, b *Tensor) {
	m, _, n := checkMatMulTransA(a, b)
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matMulTransAAccum(dst, a, b)
}

func checkMatMulTransA(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.shape, b.shape))
	}
	return m, k, b.Dim(1)
}

// matMulTransAAccum accumulates aᵀ·b into dst, which the caller has zeroed.
func matMulTransAAccum(dst, a, b *Tensor) {
	k, m := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if parallelRows(m, m*k*n) {
		parallel.ForBlocks(m, func(lo, hi int) {
			matmulTransARows(dst.Data, a.Data, b.Data, lo, hi, k, m, n)
		})
		return
	}
	matmulTransARows(dst.Data, a.Data, b.Data, 0, m, k, m, n)
}

// matmulTransARows accumulates output rows [lo,hi) of aᵀ·b. For every
// output cell the contributions are added in ascending p order — the same
// order as the serial kernel — so block boundaries cannot perturb the
// floating-point result.
func matmulTransARows(dst, a, b []float64, lo, hi, k, m, n int) {
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns the transpose of a 2-D tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
