package tensor

import "fmt"

// MatMul returns a·b for 2-D tensors a (m×k) and b (k×n). The result is a
// freshly allocated m×n tensor. The inner loops are ordered i-k-j so the
// innermost traversal is contiguous in both b and the destination, which is
// the standard cache-friendly layout for row-major matrices.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's buffer. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matmulInto(dst.Data, a.Data, b.Data, m, k, n)
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	return m, k, b.Dim(1)
}

// matmulInto accumulates a (m×k) times b (k×n) into dst (m×n). dst must be
// zeroed by the caller (New returns zeroed storage).
func matmulInto(dst, a, b []float64, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a·bᵀ for a (m×k) and b (n×k). Used by the dense and
// conv backward passes, avoiding an explicit transpose allocation.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	if b.Dim(1) != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.shape, b.shape))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			s := 0.0
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
	return out
}

// MatMulTransA returns aᵀ·b for a (k×m) and b (k×n). Used to compute weight
// gradients without materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m := a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.shape, b.shape))
	}
	n := b.Dim(1)
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns the transpose of a 2-D tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
