package tensor

import (
	"fmt"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// parallelFlopCutoff is the minimum multiply-add count (m·k·n) at which the
// matmul kernels split their output rows across workers. Below it the cost
// of spawning and joining goroutines exceeds the arithmetic itself (the
// SmallCNN per-batch matmuls sit under this line on purpose). Each output
// row is computed by exactly one worker with the same inner-loop order as
// the serial kernel, so results are bit-identical for any worker count.
const parallelFlopCutoff = 1 << 17

// parallelRows reports whether an m-row kernel with work total multiply-adds
// should run row-blocked across workers.
func parallelRows(m, work int) bool {
	return m > 1 && work >= parallelFlopCutoff && parallel.Workers() > 1
}

// MatMul returns a·b for 2-D tensors a (m×k) and b (k×n). The result is a
// freshly allocated m×n tensor, computed by the cache-blocked tiled kernel
// (kernels.go) — bit-identical to the pre-tile reference for finite inputs.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := checkMatMul(a, b)
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulInto computes dst = a·b, reusing dst's buffer. dst must be m×n.
func MatMulInto(dst, a, b *Tensor) {
	m, k, n := checkMatMul(a, b)
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matmulInto(dst.Data, a.Data, b.Data, m, k, n)
}

func checkMatMul(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v × %v", a.shape, b.shape))
	}
	return m, k, b.Dim(1)
}

// matmulInto accumulates a (m×k) times b (k×n) into dst (m×n). dst must be
// zeroed by the caller (New returns zeroed storage). Large products are
// split over contiguous row blocks; each block runs the identical tiled
// kernel, so the parallel result matches the serial one bit for bit. Both
// precisions dispatch through this one body.
func matmulInto[E Elem](dst, a, b []E, m, k, n int) {
	if parallelRows(m, m*k*n) {
		parallel.ForBlocks(m, func(lo, hi int) {
			matmulTiled(dst, a, b, lo, hi, k, n)
		})
		return
	}
	matmulTiled(dst, a, b, 0, m, k, n)
}

// MatMulTransB returns a·bᵀ for a (m×k) and b (n×k). Used by the dense and
// conv backward passes, avoiding an explicit transpose allocation.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, _, n := checkMatMulTransB(a, b)
	out := New(m, n)
	MatMulTransBInto(out, a, b)
	return out
}

// MatMulTransBInto computes dst = a·bᵀ for a (m×k) and b (n×k), reusing
// dst's buffer. dst must be m×n; every cell is overwritten. The kernel and
// its parallel row-blocking are identical to MatMulTransB, so the result is
// bit-identical to the allocating variant at any worker count.
func MatMulTransBInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransB(a, b)
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	matmulTransBInto(dst.Data, a.Data, b.Data, m, k, n)
}

// matmulTransBInto overwrites dst (m×n) with a·bᵀ, row-blocking large
// products across workers.
func matmulTransBInto[E Elem](dst, a, b []E, m, k, n int) {
	if parallelRows(m, m*k*n) {
		parallel.ForBlocks(m, func(lo, hi int) {
			matmulTransBTiled(dst, a, b, lo, hi, k, n)
		})
		return
	}
	matmulTransBTiled(dst, a, b, 0, m, k, n)
}

func checkMatMulTransB(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransB requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	m, k = a.Dim(0), a.Dim(1)
	n = b.Dim(0)
	if b.Dim(1) != k {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v × %vᵀ", a.shape, b.shape))
	}
	return m, k, n
}

// MatMulTransA returns aᵀ·b for a (k×m) and b (k×n). Used to compute weight
// gradients without materializing the transpose.
func MatMulTransA(a, b *Tensor) *Tensor {
	m, k, n := checkMatMulTransA(a, b)
	out := New(m, n)
	matmulTransAInto(out.Data, a.Data, b.Data, k, m, n)
	return out
}

// MatMulTransAInto computes dst = aᵀ·b for a (k×m) and b (k×n), reusing
// dst's buffer. dst must be m×n; it is zeroed first because the kernel
// accumulates. Accumulation order matches MatMulTransA exactly, so the
// result is bit-identical to the allocating variant at any worker count.
func MatMulTransAInto(dst, a, b *Tensor) {
	m, k, n := checkMatMulTransA(a, b)
	if dst.Rank() != 2 || dst.Dim(0) != m || dst.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto dst shape %v, want [%d %d]", dst.shape, m, n))
	}
	dst.Zero()
	matmulTransAInto(dst.Data, a.Data, b.Data, k, m, n)
}

func checkMatMulTransA(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("tensor: MatMulTransA requires rank-2 operands, got %v and %v", a.shape, b.shape))
	}
	k, m = a.Dim(0), a.Dim(1)
	if b.Dim(0) != k {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ × %v", a.shape, b.shape))
	}
	return m, k, b.Dim(1)
}

// matmulTransAInto accumulates aᵀ·b into dst, which the caller has zeroed.
func matmulTransAInto[E Elem](dst, a, b []E, k, m, n int) {
	if parallelRows(m, m*k*n) {
		parallel.ForBlocks(m, func(lo, hi int) {
			matmulTransATiled(dst, a, b, lo, hi, k, m, n)
		})
		return
	}
	matmulTransATiled(dst, a, b, 0, m, k, m, n)
}

// Transpose returns the transpose of a 2-D tensor as a new tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic(fmt.Sprintf("tensor: Transpose requires rank-2, got %v", a.shape))
	}
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}
