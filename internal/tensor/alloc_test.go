//go:build !race

package tensor

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// TestMatMulIntoKernelsAllocFree is the allocation-regression gate for the
// in-place matmul family: with a single worker (the serial kernels; the
// parallel path inherently allocates its goroutines) and pre-sized
// destinations, a call performs zero heap allocations. Guarded by !race
// because race instrumentation adds allocations of its own.
func TestMatMulIntoKernelsAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	rng := rand.New(rand.NewSource(41))
	const m, k, n = 16, 144, 64
	a := randMat(rng, m, k)
	b := randMat(rng, k, n)
	bT := randMat(rng, n, k)
	aT := randMat(rng, k, m)
	dst := New(m, n)

	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"MatMulInto", func() { MatMulInto(dst, a, b) }},
		{"MatMulTransBInto", func() { MatMulTransBInto(dst, a, bT) }},
		{"MatMulTransAInto", func() { MatMulTransAInto(dst, aT, b) }},
	} {
		if allocs := testing.AllocsPerRun(20, tc.f); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestArenaGetAllocFreeWhenWarm gates the arena's core promise: a hit on an
// existing (slot, shape) key allocates nothing, including the variadic
// shape argument.
func TestArenaGetAllocFreeWhenWarm(t *testing.T) {
	var a Arena
	a.Get("x", 32, 1, 16, 16) // warm the key
	proto := New(32, 10)
	a.GetLike("y", proto)
	if allocs := testing.AllocsPerRun(50, func() { a.Get("x", 32, 1, 16, 16) }); allocs != 0 {
		t.Errorf("warm Arena.Get: %v allocs/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { a.GetLike("y", proto) }); allocs != 0 {
		t.Errorf("warm Arena.GetLike: %v allocs/op, want 0", allocs)
	}
}
