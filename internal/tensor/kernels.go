package tensor

// This file holds the numeric inner loops of the package, written once as
// generic kernels over the two supported element types. Two kernel
// families coexist:
//
//   - Reference kernels (suffix Ref): the pre-tile loops exactly as they
//     shipped in PR 1/2, including the `av == 0` sparsity skip. They are
//     the semantic ground truth the identity tests and the fuzz harness
//     compare against, and are not called from the production paths.
//   - Tiled kernels (suffix Tiled): cache-blocked panels (KC×NC) around a
//     4-row-unrolled register micro-kernel. The sparsity branch is
//     deliberately absent — a data-dependent branch in the innermost loop
//     defeats instruction-level parallelism and any chance of the
//     compiler keeping the four accumulator streams in registers
//     (satellite of ISSUE 7). Skipping a zero product only ever adds
//     ±0.0 to the accumulator, which cannot change a finite sum, so the
//     tiled kernels remain bit-identical to the reference for the finite
//     inputs the training stack produces (including exactly-zero pruned
//     channels and ReLU zeros).
//
// Bit-identity discipline: for every output cell, contributions are
// accumulated in ascending-p order — the KC panel loop is outermost and
// panels resume from the stored partial sum, so splitting k into panels
// replays the exact same sequence of rounded additions as one straight
// pass. Row blocking (parallel.ForBlocks) and column blocking only change
// *which* cells are computed when, never the order within a cell, which
// is why serial, parallel and reference results match bit for bit per
// precision.

// Elem is the set of element types the kernels are instantiated for.
// float64 is the canonical precision (FL aggregation, checkpoints, the
// defense's accounting); float32 is the opt-in speed backend (DESIGN.md
// §13).
type Elem interface {
	~float32 | ~float64
}

// Cache-tile extents. The inner loop touches one b-panel row plus four
// destination row segments, each nc elements wide: 5·nc elements must sit
// in L1 (~10 KiB at nc64=256), while a full KC×NC b-panel (~256 KiB at
// kc64×nc64) stays L2-resident across the row sweep. The float32 extents
// are doubled so both precisions tile the same byte footprint, which is
// also what makes the f32 panels wide enough for the compiler to emit
// packed AVX2/FMA under GOAMD64=v3.
const (
	kc64 = 128
	nc64 = 256
	kc32 = 256
	nc32 = 512
)

// tileSizes returns the (kc, nc) extents for the element type.
func tileSizes[E Elem]() (kc, nc int) {
	var e E
	if _, ok := any(e).(float32); ok {
		return kc32, nc32
	}
	return kc64, nc64
}

// matmulTiled accumulates rows [lo,hi) of a (m×k) times b (k×n) into dst
// (m×n). dst rows must be zeroed by the caller (the Into wrappers zero
// the whole destination).
//
// The micro-kernel deliberately keeps j (the contiguous dimension of b
// and dst) innermost: every j iteration is an independent FMA with no
// loop-carried dependency, so the CPU overlaps them freely, and all five
// streams are sequential. A register-blocked variant (dst partials held
// across the KC panel, p innermost) was measured slower here — it trades
// L1-resident dst traffic for strided b walks and eight serialized
// accumulator chains.
func matmulTiled[E Elem](dst, a, b []E, lo, hi, k, n int) {
	kc, nc := tileSizes[E]()
	for pc := 0; pc < k; pc += kc {
		pe := min(pc+kc, k)
		for jc := 0; jc < n; jc += nc {
			je := min(jc+nc, n)
			i := lo
			for ; i+4 <= hi; i += 4 {
				a0 := a[(i+0)*k : (i+1)*k]
				a1 := a[(i+1)*k : (i+2)*k]
				a2 := a[(i+2)*k : (i+3)*k]
				a3 := a[(i+3)*k : (i+4)*k]
				d0 := dst[(i+0)*n+jc : (i+0)*n+je]
				d1 := dst[(i+1)*n+jc : (i+1)*n+je]
				d2 := dst[(i+2)*n+jc : (i+2)*n+je]
				d3 := dst[(i+3)*n+jc : (i+3)*n+je]
				for p := pc; p < pe; p++ {
					bp := b[p*n+jc : p*n+je]
					v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
					d0 := d0[:len(bp)]
					d1 := d1[:len(bp)]
					d2 := d2[:len(bp)]
					d3 := d3[:len(bp)]
					for j, bv := range bp {
						d0[j] += v0 * bv
						d1[j] += v1 * bv
						d2[j] += v2 * bv
						d3[j] += v3 * bv
					}
				}
			}
			for ; i < hi; i++ {
				arow := a[i*k : (i+1)*k]
				drow := dst[i*n+jc : i*n+je]
				for p := pc; p < pe; p++ {
					bp := b[p*n+jc : p*n+je]
					av := arow[p]
					drow := drow[:len(bp)]
					for j, bv := range bp {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}

// matmulTransBTiled computes rows [lo,hi) of a (m×k) times bᵀ for b
// (n×k) into dst (m×n), overwriting every cell it covers. Four dot
// products run simultaneously so one pass over the a-row feeds four
// independent accumulator chains.
func matmulTransBTiled[E Elem](dst, a, b []E, lo, hi, k, n int) {
	kc, _ := tileSizes[E]()
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for pc := 0; pc < k; pc += kc {
			pe := min(pc+kc, k)
			ap := arow[pc:pe]
			first := pc == 0
			j := 0
			for ; j+4 <= n; j += 4 {
				b0 := b[(j+0)*k+pc : (j+0)*k+pe]
				b1 := b[(j+1)*k+pc : (j+1)*k+pe]
				b2 := b[(j+2)*k+pc : (j+2)*k+pe]
				b3 := b[(j+3)*k+pc : (j+3)*k+pe]
				var s0, s1, s2, s3 E
				if !first {
					s0, s1, s2, s3 = orow[j], orow[j+1], orow[j+2], orow[j+3]
				}
				b0 = b0[:len(ap)]
				b1 = b1[:len(ap)]
				b2 = b2[:len(ap)]
				b3 = b3[:len(ap)]
				for p, av := range ap {
					s0 += av * b0[p]
					s1 += av * b1[p]
					s2 += av * b2[p]
					s3 += av * b3[p]
				}
				orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			}
			for ; j < n; j++ {
				brow := b[j*k+pc : j*k+pe]
				var s E
				if !first {
					s = orow[j]
				}
				brow = brow[:len(ap)]
				for p, av := range ap {
					s += av * brow[p]
				}
				orow[j] = s
			}
		}
	}
}

// matmulTransATiled accumulates output rows [lo,hi) of aᵀ·b for a (k×m)
// and b (k×n) into dst (m×n), which the caller has zeroed. Output row i
// is column i of a, so the 4-row unroll reads four adjacent a elements
// per p instead of four strided rows. As in matmulTiled, j stays
// innermost so the four update streams are contiguous and independent.
func matmulTransATiled[E Elem](dst, a, b []E, lo, hi, k, m, n int) {
	kc, nc := tileSizes[E]()
	for pc := 0; pc < k; pc += kc {
		pe := min(pc+kc, k)
		for jc := 0; jc < n; jc += nc {
			je := min(jc+nc, n)
			i := lo
			for ; i+4 <= hi; i += 4 {
				d0 := dst[(i+0)*n+jc : (i+0)*n+je]
				d1 := dst[(i+1)*n+jc : (i+1)*n+je]
				d2 := dst[(i+2)*n+jc : (i+2)*n+je]
				d3 := dst[(i+3)*n+jc : (i+3)*n+je]
				for p := pc; p < pe; p++ {
					ap := a[p*m+i : p*m+i+4]
					v0, v1, v2, v3 := ap[0], ap[1], ap[2], ap[3]
					bp := b[p*n+jc : p*n+je]
					d0 := d0[:len(bp)]
					d1 := d1[:len(bp)]
					d2 := d2[:len(bp)]
					d3 := d3[:len(bp)]
					for j, bv := range bp {
						d0[j] += v0 * bv
						d1[j] += v1 * bv
						d2[j] += v2 * bv
						d3[j] += v3 * bv
					}
				}
			}
			for ; i < hi; i++ {
				drow := dst[i*n+jc : i*n+je]
				for p := pc; p < pe; p++ {
					av := a[p*m+i]
					bp := b[p*n+jc : p*n+je]
					drow := drow[:len(bp)]
					for j, bv := range bp {
						drow[j] += av * bv
					}
				}
			}
		}
	}
}

// matmulRowsRef is the pre-tile i-k-j reference kernel for rows [lo,hi)
// of a·b, sparsity skip included. Identity tests and the fuzz harness
// compare the tiled kernels against it; production paths never call it.
func matmulRowsRef[E Elem](dst, a, b []E, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		drow := dst[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// matmulTransBRowsRef is the pre-tile dot-product reference kernel for
// rows [lo,hi) of a·bᵀ.
func matmulTransBRowsRef[E Elem](dst, a, b []E, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var s E
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
}

// matmulTransARowsRef is the pre-tile p-outer reference kernel for output
// rows [lo,hi) of aᵀ·b, sparsity skip included.
func matmulTransARowsRef[E Elem](dst, a, b []E, lo, hi, k, m, n int) {
	for p := 0; p < k; p++ {
		arow := a[p*m : (p+1)*m]
		brow := b[p*n : (p+1)*n]
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := dst[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// im2colKernel unrolls a single C×H×W image into a (C·K·K)×(OutH·OutW)
// column matrix; see Im2Col for the layout contract.
func im2colKernel[E Elem](img []E, d ConvDims, dst []E) {
	if d.Stride == 1 {
		im2colStride1(img, d, dst)
		return
	}
	outH, outW := d.OutH(), d.OutW()
	cols := outH * outW
	row := 0
	for c := 0; c < d.C; c++ {
		chanBase := c * d.H * d.W
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				drow := dst[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.H {
						for ox := 0; ox < outW; ox++ {
							drow[i] = 0
							i++
						}
						continue
					}
					rowBase := chanBase + iy*d.W
					for ox := 0; ox < outW; ox++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix < 0 || ix >= d.W {
							drow[i] = 0
						} else {
							drow[i] = img[rowBase+ix]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// im2colStride1 is im2colKernel for stride-1 convolutions (every conv in
// the shipped models). With ix = ox + (kx-pad), the in-bounds ox range per
// kernel column is a fixed interval, so the inner loop splits into
// zero-fill edges and one straight copy — no per-element bounds branch.
// Output is bit-identical to the generic walk.
func im2colStride1[E Elem](img []E, d ConvDims, dst []E) {
	outH, outW := d.OutH(), d.OutW()
	cols := outH * outW
	row := 0
	for c := 0; c < d.C; c++ {
		chanBase := c * d.H * d.W
		for ky := 0; ky < d.K; ky++ {
			dy := ky - d.Pad
			for kx := 0; kx < d.K; kx++ {
				dxo := kx - d.Pad
				drow := dst[row*cols : (row+1)*cols]
				lo := 0
				if dxo < 0 {
					lo = -dxo
				}
				hi := outW
				if dxo+outW > d.W {
					hi = d.W - dxo
				}
				if hi < lo {
					hi = lo
				}
				for oy := 0; oy < outH; oy++ {
					iy := oy + dy
					seg := drow[oy*outW : (oy+1)*outW]
					if iy < 0 || iy >= d.H {
						for i := range seg {
							seg[i] = 0
						}
						continue
					}
					rowBase := chanBase + iy*d.W + dxo
					for i := 0; i < lo; i++ {
						seg[i] = 0
					}
					copy(seg[lo:hi], img[rowBase+lo:rowBase+hi])
					for i := hi; i < outW; i++ {
						seg[i] = 0
					}
				}
				row++
			}
		}
	}
}

// col2imKernel scatters a column-gradient matrix back into an image
// gradient, accumulating overlaps; see Col2Im for the contract.
func col2imKernel[E Elem](col []E, d ConvDims, dst []E) {
	if d.Stride == 1 {
		col2imStride1(col, d, dst)
		return
	}
	outH, outW := d.OutH(), d.OutW()
	cols := outH * outW
	row := 0
	for c := 0; c < d.C; c++ {
		chanBase := c * d.H * d.W
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				crow := col[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*d.Stride + ky - d.Pad
					if iy < 0 || iy >= d.H {
						i += outW
						continue
					}
					rowBase := chanBase + iy*d.W
					for ox := 0; ox < outW; ox++ {
						ix := ox*d.Stride + kx - d.Pad
						if ix >= 0 && ix < d.W {
							dst[rowBase+ix] += crow[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// col2imStride1 is col2imKernel for stride-1 convolutions, with the same
// interval split as im2colStride1: the accumulation loop runs over the
// fixed in-bounds ox range with no per-element branch. The adds hit each
// destination cell in the same (c, ky, kx, oy, ox) order as the generic
// walk, so the scatter is bit-identical.
func col2imStride1[E Elem](col []E, d ConvDims, dst []E) {
	outH, outW := d.OutH(), d.OutW()
	cols := outH * outW
	row := 0
	for c := 0; c < d.C; c++ {
		chanBase := c * d.H * d.W
		for ky := 0; ky < d.K; ky++ {
			dy := ky - d.Pad
			for kx := 0; kx < d.K; kx++ {
				dxo := kx - d.Pad
				crow := col[row*cols : (row+1)*cols]
				lo := 0
				if dxo < 0 {
					lo = -dxo
				}
				hi := outW
				if dxo+outW > d.W {
					hi = d.W - dxo
				}
				if hi < lo {
					hi = lo
				}
				for oy := 0; oy < outH; oy++ {
					iy := oy + dy
					if iy < 0 || iy >= d.H {
						continue
					}
					seg := crow[oy*outW+lo : oy*outW+hi]
					drow := dst[chanBase+iy*d.W+dxo+lo : chanBase+iy*d.W+dxo+hi]
					for i, v := range seg {
						drow[i] += v
					}
				}
				row++
			}
		}
	}
}
