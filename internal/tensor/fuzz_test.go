package tensor

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// FuzzMatMulTiled drives the production matmul entry points — tiled
// kernels plus parallel row-blocking — over fuzzer-chosen shapes, worker
// counts and precisions, and compares every cell against a naive
// triple-loop oracle written with no blocking at all. Because both sides
// accumulate each output cell in ascending-p order, the comparison is
// exact (bit equality), not tolerance-based: any reordering introduced by
// a future tile-size change would trip it immediately.
//
// The checked-in corpus (testdata/fuzz/FuzzMatMulTiled) pins the
// degenerate shapes the blocking logic is most likely to get wrong:
// 1×k×1 row-vector·column-vector, m×1×n outer products, and shapes
// straddling the kc/nc panel edges in both precisions.
func FuzzMatMulTiled(f *testing.F) {
	f.Add(int64(1), int64(33), int64(1), int64(1), false, int64(1)) // 1×k×1
	f.Add(int64(17), int64(1), int64(9), int64(2), false, int64(2)) // m×1×n
	f.Add(int64(129), int64(128), int64(257), int64(3), false, int64(3))
	f.Add(int64(5), int64(257), int64(513), int64(4), true, int64(4))
	f.Add(int64(4), int64(4), int64(4), int64(8), true, int64(5))
	f.Fuzz(func(t *testing.T, mRaw, kRaw, nRaw, workersRaw int64, useF32 bool, seed int64) {
		m := int(abs64(mRaw)%48) + 1
		k := int(abs64(kRaw)%300) + 1
		n := int(abs64(nRaw)%520) + 1
		workers := int(abs64(workersRaw)%8) + 1
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		rng := rand.New(rand.NewSource(seed))
		if useF32 {
			fuzzOne[float32](t, rng, m, k, n)
		} else {
			fuzzOne[float64](t, rng, m, k, n)
		}
	})
}

func abs64(v int64) int64 {
	if v < 0 {
		if v == math.MinInt64 {
			return 0
		}
		return -v
	}
	return v
}

// fuzzOne checks all three kernels for one (shape, precision) draw. A
// slice of the operands is zeroed so the sparsity paths and padding-like
// structure are exercised too.
func fuzzOne[E Elem](t *testing.T, rng *rand.Rand, m, k, n int) {
	a := randSlice[E](rng, m*k)
	bN := randSlice[E](rng, k*n)
	bT := randSlice[E](rng, n*k)
	aT := randSlice[E](rng, k*m)
	if m > 1 {
		zeroChannels(a, m, k, 2)
	}
	if k > 1 {
		zeroChannels(aT, k, m, 2)
	}

	got := make([]E, m*n)
	want := make([]E, m*n)

	matmulInto(got, a, bN, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s E
			for p := 0; p < k; p++ {
				s += a[i*k+p] * bN[p*n+j]
			}
			want[i*n+j] = s
		}
	}
	fuzzDiff(t, "matmul", got, want, m, k, n)

	matmulTransBInto(got, a, bT, m, k, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s E
			for p := 0; p < k; p++ {
				s += a[i*k+p] * bT[j*k+p]
			}
			want[i*n+j] = s
		}
	}
	fuzzDiff(t, "matmulTransB", got, want, m, k, n)

	for i := range got {
		got[i] = 0
	}
	matmulTransAInto(got, aT, bN, k, m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s E
			for p := 0; p < k; p++ {
				s += aT[p*m+i] * bN[p*n+j]
			}
			want[i*n+j] = s
		}
	}
	fuzzDiff(t, "matmulTransA", got, want, m, k, n)
}

func fuzzDiff[E Elem](t *testing.T, kernel string, got, want []E, m, k, n int) {
	t.Helper()
	for i := range got {
		if math.Float64bits(float64(got[i])) != math.Float64bits(float64(want[i])) {
			t.Fatalf("%s %dx%dx%d: cell %d differs: tiled %v, naive %v",
				kernel, m, k, n, i, got[i], want[i])
		}
	}
}
