package tensor

import "testing"

func TestArenaReturnsSameBufferForSameKey(t *testing.T) {
	var a Arena
	x := a.Get("x", 4, 3)
	if got := x.Shape(); len(got) != 2 || got[0] != 4 || got[1] != 3 {
		t.Fatalf("Get shape = %v, want [4 3]", got)
	}
	x.Data[0] = 7
	y := a.Get("x", 4, 3)
	if y != x {
		t.Fatal("second Get with same slot/shape returned a different tensor")
	}
	if y.Data[0] != 7 {
		t.Fatal("recycled buffer was zeroed; Get must keep contents")
	}
}

func TestArenaDistinguishesSlotAndShape(t *testing.T) {
	var a Arena
	x := a.Get("x", 4, 3)
	if a.Get("y", 4, 3) == x {
		t.Fatal("different slots with the same shape must not alias")
	}
	if a.Get("x", 3, 4) == x {
		t.Fatal("same slot with a different shape must not alias")
	}
	if a.Get("x", 12) == x {
		t.Fatal("same slot with a different rank must not alias")
	}
	// The original key still resolves to the original buffer.
	if a.Get("x", 4, 3) != x {
		t.Fatal("coexisting shapes evicted the original buffer")
	}
}

func TestArenaGetLikeMatchesGet(t *testing.T) {
	var a Arena
	proto := New(2, 3, 4)
	if a.GetLike("s", proto) != a.Get("s", 2, 3, 4) {
		t.Fatal("GetLike and Get with the same slot/shape returned different buffers")
	}
	if a.GetLike("s", proto) == proto {
		t.Fatal("GetLike returned the prototype itself")
	}
}

func TestArenaReset(t *testing.T) {
	var a Arena
	x := a.Get("x", 5)
	a.Reset()
	if a.Get("x", 5) == x {
		t.Fatal("Reset kept the old buffer")
	}
}

func TestArenaRejectsExcessiveRank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get with rank 5 did not panic")
		}
	}()
	var a Arena
	a.Get("x", 1, 2, 3, 4, 5)
}

func TestEnsureShape(t *testing.T) {
	x := New(3, 4)
	x.Data[0] = 1
	if got := EnsureShape(x, 3, 4); got != x {
		t.Fatal("EnsureShape reallocated despite matching shape")
	}
	if got := EnsureShape(x, 4, 3); got == x {
		t.Fatal("EnsureShape reused a buffer of the wrong shape")
	} else if s := got.Shape(); s[0] != 4 || s[1] != 3 {
		t.Fatalf("EnsureShape new shape = %v, want [4 3]", s)
	}
	if got := EnsureShape(nil, 2, 2); got == nil || got.Len() != 4 {
		t.Fatal("EnsureShape(nil) did not allocate")
	}
	if got := EnsureShape(x, 3, 4, 1); got == x {
		t.Fatal("EnsureShape reused a buffer of the wrong rank")
	}
}
