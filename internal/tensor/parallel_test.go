package tensor

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// withWorkers runs f with the global worker override pinned to w.
func withWorkers(t *testing.T, w int, f func()) {
	t.Helper()
	prev := parallel.SetWorkers(w)
	defer parallel.SetWorkers(prev)
	f()
}

// TestMatMulParallelBitIdentical asserts the tentpole determinism
// guarantee: all three matmul kernels produce bit-identical output for
// worker counts 1, 2 and 8 on matrices large enough to take the
// row-blocked path (256³ = 16.7M multiply-adds, far above the cutoff).
func TestMatMulParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const sz = 256
	a := randMat(rng, sz, sz)
	b := randMat(rng, sz, sz)
	// Sprinkle zeros to exercise the skip-zero branches.
	for i := 0; i < sz*sz/10; i++ {
		a.Data[rng.Intn(len(a.Data))] = 0
	}

	kernels := []struct {
		name string
		f    func() []float64
	}{
		{"MatMul", func() []float64 { return MatMul(a, b).Data }},
		{"MatMulTransA", func() []float64 { return MatMulTransA(a, b).Data }},
		{"MatMulTransB", func() []float64 { return MatMulTransB(a, b).Data }},
	}
	for _, kn := range kernels {
		var ref []float64
		withWorkers(t, 1, func() { ref = kn.f() })
		for _, w := range []int{2, 8} {
			withWorkers(t, w, func() {
				got := kn.f()
				if len(got) != len(ref) {
					t.Fatalf("%s workers=%d: length %d, want %d", kn.name, w, len(got), len(ref))
				}
				for i := range got {
					if got[i] != ref[i] {
						t.Fatalf("%s workers=%d: element %d = %v, want %v (not bit-identical)",
							kn.name, w, i, got[i], ref[i])
					}
				}
			})
		}
	}
}

// TestMatMulIntoParallelMatchesSerial covers the Into variant used by the
// conv forward pass, including buffer reuse across calls.
func TestMatMulIntoParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 128, 96)
	b := randMat(rng, 96, 128)
	ref := New(128, 128)
	withWorkers(t, 1, func() {
		MatMulInto(ref, a, b)
		MatMulInto(ref, a, b) // reuse must re-zero
	})
	got := New(128, 128)
	withWorkers(t, 8, func() {
		MatMulInto(got, a, b)
		MatMulInto(got, a, b)
	})
	for i := range got.Data {
		if got.Data[i] != ref.Data[i] {
			t.Fatalf("element %d = %v, want %v", i, got.Data[i], ref.Data[i])
		}
	}
}

// TestSmallMatMulStaysBelowCutoff documents that tiny products do not pay
// goroutine overhead: correctness is identical either way, so this just
// pins the cutoff predicate.
func TestSmallMatMulStaysBelowCutoff(t *testing.T) {
	withWorkers(t, 8, func() {
		if parallelRows(4, 4*4*4) {
			t.Fatal("4x4x4 product classified as parallel")
		}
		if !parallelRows(256, 256*256*256) {
			t.Fatal("256^3 product classified as serial")
		}
		// Single-row products can never split.
		if parallelRows(1, 1<<30) {
			t.Fatal("single-row product classified as parallel")
		}
	})
	withWorkers(t, 1, func() {
		if parallelRows(256, 256*256*256) {
			t.Fatal("parallel path selected with one worker")
		}
	})
}
