package eval

import (
	"fmt"
	"strings"
)

// Cell is one (test accuracy, attack accuracy) measurement in percent.
type Cell struct {
	TA, AA float64
}

// Row is one experiment setting across the table's modes.
type Row struct {
	// Label describes the setting (e.g. "9->0" or a dataset name).
	Label string
	// Cells maps mode name to measurement.
	Cells map[string]Cell
	// Extra carries per-row integers (e.g. pruned-neuron counts), keyed by
	// column name; rendered after the mode cells.
	Extra map[string]int
}

// Table is a paper-style results table.
type Table struct {
	Title string
	// Modes are the cell columns, in render order.
	Modes []string
	// ExtraCols are integer columns, in render order.
	ExtraCols []string
	Rows      []Row
}

// Averages returns the per-mode mean cell over all rows.
func (t *Table) Averages() map[string]Cell {
	out := make(map[string]Cell, len(t.Modes))
	if len(t.Rows) == 0 {
		return out
	}
	for _, m := range t.Modes {
		var c Cell
		for _, r := range t.Rows {
			c.TA += r.Cells[m].TA
			c.AA += r.Cells[m].AA
		}
		n := float64(len(t.Rows))
		out[m] = Cell{TA: c.TA / n, AA: c.AA / n}
	}
	return out
}

// Render formats the table as aligned text with a trailing average row.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-14s", "setting")
	for _, m := range t.Modes {
		fmt.Fprintf(&b, " | %-13s", m)
	}
	for _, e := range t.ExtraCols {
		fmt.Fprintf(&b, " | %8s", e)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-14s", "")
	for range t.Modes {
		fmt.Fprintf(&b, " | %6s %6s", "TA", "AA")
	}
	for range t.ExtraCols {
		fmt.Fprintf(&b, " | %8s", "")
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r.Label)
		for _, m := range t.Modes {
			c := r.Cells[m]
			fmt.Fprintf(&b, " | %6.1f %6.1f", c.TA, c.AA)
		}
		for _, e := range t.ExtraCols {
			fmt.Fprintf(&b, " | %8d", r.Extra[e])
		}
		b.WriteString("\n")
	}
	if len(t.Rows) > 1 {
		avg := t.Averages()
		fmt.Fprintf(&b, "%-14s", "avg")
		for _, m := range t.Modes {
			c := avg[m]
			fmt.Fprintf(&b, " | %6.1f %6.1f", c.TA, c.AA)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Series is one named curve of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// Figure is a paper-style figure rendered as labeled series.
type Figure struct {
	Title  string
	XLabel string
	Series []Series
}

// Render formats the figure's series as aligned text columns.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-28s", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, " (%g: %.1f)", s.X[i], s.Y[i])
		}
		b.WriteString("\n")
	}
	return b.String()
}
