package eval

import (
	"math"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// TestFloat32BackendMNISTParity is the end-to-end accuracy gate for the
// float32 backend: the paper's MNIST scenario trained entirely on float32
// arithmetic must land within 0.5 percentage points of the float64
// reference on both benign test accuracy (TA) and attack success rate
// (ASR). Per-step rounding differences act as tiny parameter noise; the
// float64 aggregation and optimizer state keep the two runs on the same
// trajectory, so the final metrics agree to well under a point.
func TestFloat32BackendMNISTParity(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end federated training is slow")
	}
	run := func(b nn.Backend) (ta, aa float64) {
		s := MNISTScenario(9, 2)
		s.Backend = b
		tr := Run(s)
		return tr.TA(), tr.AA()
	}
	ta64, aa64 := run(nn.Float64)
	ta32, aa32 := run(nn.Float32)
	t.Logf("float64: TA=%.2f AA=%.2f; float32: TA=%.2f AA=%.2f", ta64, aa64, ta32, aa32)
	if d := math.Abs(ta64 - ta32); d > 0.5 {
		t.Errorf("TA differs by %.2f pp across backends (float64 %.2f, float32 %.2f), want <= 0.5", d, ta64, ta32)
	}
	if d := math.Abs(aa64 - aa32); d > 0.5 {
		t.Errorf("ASR differs by %.2f pp across backends (float64 %.2f, float32 %.2f), want <= 0.5", d, aa64, aa32)
	}
}

// SetDefaultBackend stamps the backend onto every scenario constructor
// (the cmd/fedbench -backend plumbing).
func TestSetDefaultBackend(t *testing.T) {
	prev := SetDefaultBackend(nn.Float32)
	defer SetDefaultBackend(prev)
	if b := MNISTScenario(9, 2).Backend; b != nn.Float32 {
		t.Fatalf("MNISTScenario backend %v, want Float32", b)
	}
	if b := FashionScenario(9, 2).Backend; b != nn.Float32 {
		t.Fatalf("FashionScenario backend %v, want Float32", b)
	}
	if b := CIFARScenario(9, 2).Backend; b != nn.Float32 {
		t.Fatalf("CIFARScenario backend %v, want Float32", b)
	}
	SetDefaultBackend(prev)
	if b := MNISTScenario(9, 2).Backend; b != prev {
		t.Fatalf("MNISTScenario backend %v after restore, want %v", b, prev)
	}
}
