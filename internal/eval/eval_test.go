package eval

import (
	"strings"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/core"
)

func TestPairHelpers(t *testing.T) {
	full := FullPairs()
	if len(full) != 18 {
		t.Fatalf("FullPairs has %d entries, want 18", len(full))
	}
	for _, p := range full {
		if p.VL == p.AL {
			t.Fatalf("pair %v has victim == target", p)
		}
	}
	if len(NinePairs()) != 9 {
		t.Fatal("NinePairs should have 9 entries")
	}
	if len(QuickPairs()) == 0 {
		t.Fatal("QuickPairs is empty")
	}
	if got := (Pair{9, 0}).String(); got != "9->0" {
		t.Fatalf("Pair.String = %q", got)
	}
}

func TestScenarioConstructors(t *testing.T) {
	m := MNISTScenario(9, 2)
	if m.Poison.VictimLabel != 9 || m.Poison.TargetLabel != 2 {
		t.Fatal("MNIST scenario poison labels wrong")
	}
	if m.Clients != 10 || m.Attackers != 1 || m.KLabels != 3 {
		t.Fatalf("MNIST scenario population %d/%d/%d", m.Clients, m.Attackers, m.KLabels)
	}
	f := FashionScenario(9, 0)
	if len(f.Poison.Trigger.Pixels) != 1 {
		t.Fatal("Fashion scenario should use the single-pixel trigger")
	}
	c := CIFARScenario(9, 0)
	if !c.DBA || c.Attackers != 4 {
		t.Fatal("CIFAR scenario should use DBA with 4 attackers")
	}
}

func TestBuildPopulationAndSplits(t *testing.T) {
	s := MNISTScenario(9, 2)
	s.FL.Rounds = 1
	tr := Build(s)
	if len(tr.Participants) != s.Clients {
		t.Fatalf("%d participants, want %d", len(tr.Participants), s.Clients)
	}
	if len(tr.Attackers) != s.Attackers {
		t.Fatalf("%d attackers, want %d", len(tr.Attackers), s.Attackers)
	}
	// Every attacker's shard must contain victim-label samples, or the
	// backdoor task is vacuous.
	for _, a := range tr.Attackers {
		found := false
		for _, sm := range a.Dataset().Samples {
			if sm.Label == s.Poison.VictimLabel {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("attacker shard lacks victim-label samples")
		}
	}
	if tr.Validation.Len() == 0 || tr.Test.Len() == 0 {
		t.Fatal("empty validation or test split")
	}
	// Validation and test must be disjoint sample sets.
	seen := map[*float64]bool{}
	for _, sm := range tr.Validation.Samples {
		seen[&sm.X[0]] = true
	}
	for _, sm := range tr.Test.Samples {
		if seen[&sm.X[0]] {
			t.Fatal("validation and test share samples")
		}
	}
}

func TestDefendModeRejectsUnknown(t *testing.T) {
	tr := &Trained{}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mode accepted")
		}
	}()
	tr.DefendMode("banish")
}

func TestTableRenderAndAverages(t *testing.T) {
	tbl := &Table{
		Title: "test",
		Modes: []string{"a", "b"},
		Rows: []Row{
			{Label: "r1", Cells: map[string]Cell{"a": {TA: 90, AA: 10}, "b": {TA: 80, AA: 20}}},
			{Label: "r2", Cells: map[string]Cell{"a": {TA: 70, AA: 30}, "b": {TA: 60, AA: 40}}},
		},
	}
	avg := tbl.Averages()
	if avg["a"].TA != 80 || avg["a"].AA != 20 || avg["b"].TA != 70 {
		t.Fatalf("averages wrong: %+v", avg)
	}
	out := tbl.Render()
	for _, want := range []string{"test", "r1", "r2", "avg", "90.0", "40.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderExtraCols(t *testing.T) {
	tbl := &Table{
		Title:     "x",
		Modes:     []string{"m"},
		ExtraCols: []string{"pruned"},
		Rows: []Row{
			{Label: "r", Cells: map[string]Cell{"m": {TA: 1, AA: 2}}, Extra: map[string]int{"pruned": 7}},
		},
	}
	if !strings.Contains(tbl.Render(), "7") {
		t.Fatal("extra column not rendered")
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		Title:  "fig",
		Series: []Series{{Name: "TA", X: []float64{0, 1}, Y: []float64{97.5, 98.5}}},
	}
	out := fig.Render()
	for _, want := range []string{"fig", "TA", "97.5", "98.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure render missing %q:\n%s", want, out)
		}
	}
}

// TestEndToEndDefense is the repository's central integration test: it
// federatedly trains a backdoored model and verifies the paper's headline
// claims on a reduced-scale scenario — the attack succeeds during
// training, and the full defense pipeline substantially reduces the attack
// success rate while roughly preserving benign accuracy.
func TestEndToEndDefense(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end federated training is slow")
	}
	s := MNISTScenario(9, 2)
	tr := Run(s)
	taTrain, aaTrain := tr.TA(), tr.AA()
	if taTrain < 80 {
		t.Fatalf("training TA %.1f, want >= 80", taTrain)
	}
	if aaTrain < 70 {
		t.Fatalf("attack failed during training: AA %.1f, want >= 70", aaTrain)
	}
	m, rep := tr.DefendMode("all")
	taDef, aaDef := tr.ModelTA(m), tr.ModelAA(m)
	if aaDef > aaTrain-30 {
		t.Fatalf("defense reduced AA only %.1f -> %.1f", aaTrain, aaDef)
	}
	if taDef < taTrain-10 {
		t.Fatalf("defense cost too much accuracy: %.1f -> %.1f", taTrain, taDef)
	}
	if len(rep.Prune.Pruned) == 0 && rep.AW.Zeroed == 0 {
		t.Fatal("defense did nothing")
	}
}

// TestPruneOnlyModesRun exercises the RAP/MVP plumbing end to end on a
// short scenario.
func TestPruneOnlyModesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("federated training is slow")
	}
	s := MNISTScenario(9, 0)
	s.FL.Rounds = 6
	tr := Run(s)
	for _, method := range []core.PruneMethod{core.RAP, core.MVP} {
		cfg := core.DefaultPipelineConfig()
		cfg.Method = method
		cfg.FineTuneRounds = 0
		cfg.SkipAW = true
		m, rep := tr.Defend(cfg)
		if rep.Method != method {
			t.Fatalf("report method %v, want %v", rep.Method, method)
		}
		if tr.ModelTA(m) < rep.AccBefore*100-10 {
			t.Fatalf("%v pruning destroyed the model", method)
		}
	}
}
