package eval

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sampleTable() *Table {
	return &Table{
		Title:     "t",
		Modes:     []string{"training", "all"},
		ExtraCols: []string{"pruned"},
		Rows: []Row{
			{
				Label: "9->0",
				Cells: map[string]Cell{
					"training": {TA: 98.25, AA: 99.7},
					"all":      {TA: 96.9, AA: 4.7},
				},
				Extra: map[string]int{"pruned": 8},
			},
		},
	}
}

func TestTableWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("%d CSV records, want 2", len(records))
	}
	wantHeader := []string{"setting", "training_ta", "training_aa", "all_ta", "all_aa", "pruned"}
	for i, h := range wantHeader {
		if records[0][i] != h {
			t.Fatalf("header %v, want %v", records[0], wantHeader)
		}
	}
	if records[1][0] != "9->0" || records[1][1] != "98.25" || records[1][5] != "8" {
		t.Fatalf("row %v", records[1])
	}
}

func TestTableWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "t" || len(got.Rows) != 1 || got.Rows[0].Cells["all"].AA != 4.7 {
		t.Fatalf("JSON round trip lost data: %+v", got)
	}
}

func TestFigureWriteCSV(t *testing.T) {
	fig := &Figure{
		Title:  "f",
		XLabel: "round",
		Series: []Series{
			{Name: "TA", X: []float64{0, 1}, Y: []float64{90, 95}},
			{Name: "AA", X: []float64{0, 1}, Y: []float64{99, 98}},
		},
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 5 { // header + 4 points
		t.Fatalf("%d records, want 5", len(records))
	}
	if records[0][1] != "round" {
		t.Fatalf("x label %q, want round", records[0][1])
	}
	if records[1][0] != "TA" || !strings.HasPrefix(records[2][2], "95") {
		t.Fatalf("rows %v", records[1:3])
	}
}

func TestFigureWriteJSON(t *testing.T) {
	fig := &Figure{Title: "f", Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}}}
	var buf bytes.Buffer
	if err := fig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got Figure
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 1 || got.Series[0].Y[0] != 2 {
		t.Fatalf("JSON round trip lost data: %+v", got)
	}
}
