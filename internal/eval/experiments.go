package eval

import (
	"fmt"
	"time"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/neuralcleanse"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// Pair is one (victim label, attack label) backdoor task.
type Pair struct {
	VL, AL int
}

// String implements fmt.Stringer.
func (p Pair) String() string { return fmt.Sprintf("%d->%d", p.VL, p.AL) }

// FullPairs returns the paper's 18 MNIST settings: victim 9 against every
// other attack label, and every victim against attack label 9.
func FullPairs() []Pair {
	var out []Pair
	for al := 0; al <= 8; al++ {
		out = append(out, Pair{9, al})
	}
	for vl := 0; vl <= 8; vl++ {
		out = append(out, Pair{vl, 9})
	}
	return out
}

// NinePairs returns the paper's Table II/III settings: victim 9 against
// every other label.
func NinePairs() []Pair {
	var out []Pair
	for al := 0; al <= 8; al++ {
		out = append(out, Pair{9, al})
	}
	return out
}

// QuickPairs is the reduced sweep used by the benchmark defaults (the full
// sweeps are available through cmd/fedbench -full).
func QuickPairs() []Pair { return []Pair{{9, 0}, {9, 2}, {4, 9}} }

// DefendMode runs one of the paper's defense modes on a clone of the
// trained global model: "fp" (pruning only), "aw" (adjusting weights
// only), "fp+aw" (no fine-tuning) or "all" (the complete Algorithm 1).
func (t *Trained) DefendMode(mode string) (*nn.Sequential, core.Report) {
	cfg := core.DefaultPipelineConfig()
	switch mode {
	case "fp":
		cfg.FineTuneRounds = 0
		cfg.SkipAW = true
	case "aw":
		cfg.FineTuneRounds = 0
		cfg.SkipPrune = true
	case "fp+aw":
		cfg.FineTuneRounds = 0
	case "all":
	default:
		panic(fmt.Sprintf("eval: unknown defense mode %q", mode))
	}
	return t.Defend(cfg)
}

// modeTable runs the given defense modes over one scenario per pair and
// assembles a paper-style table. scen maps a pair to its scenario.
func modeTable(title string, pairs []Pair, modes []string, scen func(Pair) Scenario) *Table {
	tbl := &Table{Title: title, Modes: append([]string{"training"}, modes...)}
	for _, p := range pairs {
		t := Run(scen(p))
		row := Row{Label: p.String(), Cells: map[string]Cell{
			"training": {TA: t.TA(), AA: t.AA()},
		}}
		for _, mode := range modes {
			m, _ := t.DefendMode(mode)
			row.Cells[mode] = Cell{TA: t.ModelTA(m), AA: t.ModelAA(m)}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// TableI reproduces the paper's Table I: MNIST, Training vs FP+AW vs All.
func TableI(pairs []Pair) *Table {
	return modeTable("Table I — SynthMNIST: Training vs FP+AW vs All", pairs,
		[]string{"fp+aw", "all"},
		func(p Pair) Scenario { return MNISTScenario(p.VL, p.AL) })
}

// TableII reproduces Table II: Fashion-MNIST, Training/FP/FP+AW/All.
func TableII(pairs []Pair) *Table {
	return modeTable("Table II — SynthFashion: Training vs FP vs FP+AW vs All", pairs,
		[]string{"fp", "fp+aw", "all"},
		func(p Pair) Scenario { return FashionScenario(p.VL, p.AL) })
}

// TableIII reproduces Table III: CIFAR-10 under the Distributed Backdoor
// Attack, Training/FP/FP+AW/All.
func TableIII(pairs []Pair) *Table {
	return modeTable("Table III — SynthCIFAR + DBA: Training vs FP vs FP+AW vs All", pairs,
		[]string{"fp", "fp+aw", "all"},
		func(p Pair) Scenario { return CIFARScenario(p.VL, p.AL) })
}

// TableIV reproduces Table IV: our full defense vs Neural Cleanse on all
// three datasets (one representative pair per dataset).
func TableIV(pair Pair) *Table {
	tbl := &Table{
		Title: "Table IV — defense comparison with Neural Cleanse",
		Modes: []string{"training", "neural-cleanse", "ours"},
	}
	scens := []struct {
		name string
		s    Scenario
	}{
		{"mnist", MNISTScenario(pair.VL, pair.AL)},
		{"fashion", FashionScenario(pair.VL, pair.AL)},
		{"cifar", CIFARScenario(pair.VL, pair.AL)},
	}
	for _, sc := range scens {
		t := Run(sc.s)
		row := Row{Label: sc.name, Cells: map[string]Cell{
			"training": {TA: t.TA(), AA: t.AA()},
		}}
		// Neural Cleanse: reverse a trigger for every label on the test
		// split, mitigate using the flagged (or overall best) candidate.
		ncModel := t.Server.Model.Clone()
		cfg := neuralcleanse.DefaultConfig()
		trigs := neuralcleanse.ReverseAll(ncModel, t.Validation, cfg)
		flagged := neuralcleanse.DetectOutliersMAD(trigs, 2)
		if len(flagged) == 0 {
			// Fall back to the smallest-norm candidate, giving NC its best
			// shot (the paper selects NC's best result for comparison).
			best := 0
			for i, tr := range trigs {
				if tr.MaskNorm < trigs[best].MaskNorm {
					best = i
				}
			}
			flagged = []int{best}
		}
		evalFn := t.ValidationEvaluator()
		base := evalFn.Evaluate(ncModel)
		for _, label := range flagged {
			neuralcleanse.Mitigate(ncModel, trigs[label], t.Validation, evalFn, base-0.05)
		}
		row.Cells["neural-cleanse"] = Cell{TA: t.ModelTA(ncModel), AA: t.ModelAA(ncModel)}

		ours, _ := t.DefendMode("all")
		row.Cells["ours"] = Cell{TA: t.ModelTA(ours), AA: t.ModelAA(ours)}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// TableV reproduces Table V: pruning-only defense, RAP vs MVP, on MNIST.
func TableV(pairs []Pair) *Table {
	tbl := &Table{
		Title: "Table V — pruning only: RAP vs MVP",
		Modes: []string{"training", "rap", "mvp"},
	}
	for _, p := range pairs {
		t := Run(MNISTScenario(p.VL, p.AL))
		row := Row{Label: p.String(), Cells: map[string]Cell{
			"training": {TA: t.TA(), AA: t.AA()},
		}}
		for _, method := range []core.PruneMethod{core.RAP, core.MVP} {
			cfg := core.DefaultPipelineConfig()
			cfg.Method = method
			cfg.FineTuneRounds = 0
			cfg.SkipAW = true
			m, _ := t.Defend(cfg)
			name := "rap"
			if method == core.MVP {
				name = "mvp"
			}
			row.Cells[name] = Cell{TA: t.ModelTA(m), AA: t.ModelAA(m)}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// TableVI reproduces Table VI: adjusting extreme weights alone on the
// small (8/16) and large (20/50) CNNs. The Extra column N counts zeroed
// weights.
func TableVI(pairs []Pair) *Table {
	tbl := &Table{
		Title:     "Table VI — AW only: small vs large NN",
		Modes:     []string{"small-training", "small-aw", "large-training", "large-aw"},
		ExtraCols: []string{"N-small", "N-large"},
	}
	for _, p := range pairs {
		row := Row{Label: p.String(), Cells: map[string]Cell{}, Extra: map[string]int{}}
		for _, size := range []string{"small", "large"} {
			s := MNISTScenario(p.VL, p.AL)
			if size == "large" {
				s.Build = nn.NewLargeCNN
			}
			t := Run(s)
			row.Cells[size+"-training"] = Cell{TA: t.TA(), AA: t.AA()}
			m, rep := t.DefendMode("aw")
			row.Cells[size+"-aw"] = Cell{TA: t.ModelTA(m), AA: t.ModelAA(m)}
			row.Extra["N-"+size] = rep.AW.Zeroed
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// TableVII reproduces Table VII: federated pruning then AW under the five
// pixel-pattern sizes, with a fixed Δ=3 clip as in the paper.
func TableVII(patterns []int) *Table {
	tbl := &Table{
		Title:     "Table VII — attack patterns (pixels) with fixed Δ=3",
		Modes:     []string{"training", "fp", "fp+aw"},
		ExtraCols: []string{"pruned", "zeroed"},
	}
	for _, n := range patterns {
		s := MNISTScenario(9, 1)
		s.Poison.Trigger = dataset.PixelPattern(n, dataset.Shape{C: 1, H: 16, W: 16})
		t := Run(s)
		row := Row{Label: fmt.Sprintf("%d-pixel", n), Cells: map[string]Cell{
			"training": {TA: t.TA(), AA: t.AA()},
		}, Extra: map[string]int{}}

		fpModel, fpRep := t.DefendMode("fp")
		row.Cells["fp"] = Cell{TA: t.ModelTA(fpModel), AA: t.ModelAA(fpModel)}
		row.Extra["pruned"] = len(fpRep.Prune.Pruned)

		cfg := core.DefaultPipelineConfig()
		cfg.FineTuneRounds = 0
		// Fixed threshold index Δ=3 (paper Table VII): a single clip, no
		// accuracy-guarded descent.
		cfg.AW = core.AWConfig{StartDelta: 3, MinDelta: 3, Eps: 1, MinAccuracy: -1}
		awModel, awRep := t.Defend(cfg)
		row.Cells["fp+aw"] = Cell{TA: t.ModelTA(awModel), AA: t.ModelAA(awModel)}
		row.Extra["zeroed"] = awRep.AW.Zeroed
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}

// Fig3 reproduces Figure 3: training curves (TA and AA per round) under
// K-label distributions.
func Fig3(ks []int) *Figure {
	fig := &Figure{Title: "Fig. 3 — training under K-label distributions", XLabel: "round"}
	for _, k := range ks {
		s := MNISTScenario(9, 1)
		s.KLabels = k
		t := Build(s)
		var xs, tas, aas []float64
		t.Server.Train(func(round int) {
			xs = append(xs, float64(round))
			tas = append(tas, t.TA())
			aas = append(aas, t.AA())
		})
		fig.Series = append(fig.Series,
			Series{Name: fmt.Sprintf("TA k=%d", k), X: xs, Y: tas},
			Series{Name: fmt.Sprintf("AA k=%d", k), X: xs, Y: aas},
		)
	}
	return fig
}

// toPercent scales sweep curves from fractions to percent in place.
func toPercent(curves [][]float64) {
	for _, c := range curves {
		for i := range c {
			c[i] *= 100
		}
	}
}

// Fig5 reproduces Figure 5: pruning curves (TA and AA vs number of pruned
// neurons) for RAP and MVP on two attack targets.
func Fig5(targets []int) *Figure {
	fig := &Figure{Title: "Fig. 5 — pruning curves (RAP vs MVP)", XLabel: "#pruned"}
	for _, target := range targets {
		t := Run(MNISTScenario(9, target))
		layerIdx := t.Server.Model.LastConvIndex()
		clients := fl.ReportClients(t.Participants)
		for _, method := range []core.PruneMethod{core.RAP, core.MVP} {
			cfg := core.DefaultPipelineConfig()
			cfg.Method = method
			order := core.GlobalPruneOrder(t.Server.Model, clients, layerIdx, cfg)
			m := t.Server.Model.Clone()
			// Cached evaluators: the sweep replays only suffix layers per
			// prune, with scores identical to ModelTA/ModelAA (scaled below).
			curves := core.PruneSweep(m, layerIdx, order, t.TestEvaluator(), t.ASREvaluator())
			toPercent(curves)
			xs := make([]float64, len(curves[0]))
			for i := range xs {
				xs[i] = float64(i)
			}
			fig.Series = append(fig.Series,
				Series{Name: fmt.Sprintf("TA %s target %d", method, target), X: xs, Y: curves[0]},
				Series{Name: fmt.Sprintf("AA %s target %d", method, target), X: xs, Y: curves[1]},
			)
		}
	}
	return fig
}

// Fig6 reproduces Figure 6: TA and AA along the AW Δ sweep for two attack
// targets (pruned model, no fine-tuning).
func Fig6(targets []int, deltas []float64) *Figure {
	fig := &Figure{Title: "Fig. 6 — adjusting extreme weights vs Δ", XLabel: "delta"}
	for _, target := range targets {
		t := Run(MNISTScenario(9, target))
		m, rep := t.DefendMode("fp")
		for _, li := range core.DefaultAWLayers(m, rep.TargetLayer) {
			mm := m.Clone()
			curves := core.AWSweep(mm, li, deltas, t.TestEvaluator(), t.ASREvaluator())
			toPercent(curves)
			xs := append([]float64{0}, deltas...) // 0 = unclipped original
			fig.Series = append(fig.Series,
				Series{Name: fmt.Sprintf("TA target %d layer %d", target, li), X: xs, Y: curves[0]},
				Series{Name: fmt.Sprintf("AA target %d layer %d", target, li), X: xs, Y: curves[1]},
			)
		}
	}
	return fig
}

// Fig7 reproduces Figure 7: the defense under random client selection —
// 50 clients, 10% attackers, training with 5..25 selected per round, then
// the full defense.
func Fig7(selects []int) *Figure {
	fig := &Figure{Title: "Fig. 7 — random client selection (50 clients, 10% attackers)", XLabel: "selected"}
	var xs, taTrain, aaTrain, taDef, aaDef []float64
	for _, sel := range selects {
		s := MNISTScenario(9, 2)
		s.Clients = 50
		s.Attackers = 5
		s.PerClient = 40
		s.GenCfg.TrainPerClass = 220
		s.FL.SelectPerRound = sel
		s.FL.Rounds = 30
		t := Run(s)
		xs = append(xs, float64(sel))
		taTrain = append(taTrain, t.TA())
		aaTrain = append(aaTrain, t.AA())
		m, _ := t.DefendMode("all")
		taDef = append(taDef, t.ModelTA(m))
		aaDef = append(aaDef, t.ModelAA(m))
	}
	fig.Series = []Series{
		{Name: "TA after training", X: xs, Y: taTrain},
		{Name: "AA after training", X: xs, Y: aaTrain},
		{Name: "TA after defense", X: xs, Y: taDef},
		{Name: "AA after defense", X: xs, Y: aaDef},
	}
	return fig
}

// Fig8 reproduces Figure 8: defense performance against 1..N attackers of
// a 10-client population — pruning-only vs the complete defense.
func Fig8(attackerCounts []int) *Figure {
	fig := &Figure{Title: "Fig. 8 — number of attackers", XLabel: "attackers"}
	var xs, taFP, aaFP, taAll, aaAll []float64
	for _, n := range attackerCounts {
		s := MNISTScenario(9, 2)
		s.Attackers = n
		t := Run(s)
		xs = append(xs, float64(n))
		mFP, _ := t.DefendMode("fp")
		taFP = append(taFP, t.ModelTA(mFP))
		aaFP = append(aaFP, t.ModelAA(mFP))
		mAll, _ := t.DefendMode("all")
		taAll = append(taAll, t.ModelTA(mAll))
		aaAll = append(aaAll, t.ModelAA(mAll))
	}
	fig.Series = []Series{
		{Name: "TA pruning only", X: xs, Y: taFP},
		{Name: "AA pruning only", X: xs, Y: aaFP},
		{Name: "TA full defense", X: xs, Y: taAll},
		{Name: "AA full defense", X: xs, Y: aaAll},
	}
	return fig
}

// PhaseTiming records wall-clock seconds per defense phase (Figure 9).
type PhaseTiming struct {
	Dataset                           string
	Training, Pruning, FineTuning, AW float64
}

// Fig9 measures the wall-clock time of each phase on all three datasets.
func Fig9() []PhaseTiming {
	var out []PhaseTiming
	scens := []struct {
		name string
		s    Scenario
	}{
		{"mnist", MNISTScenario(9, 2)},
		{"fashion", FashionScenario(9, 2)},
		{"cifar", CIFARScenario(9, 2)},
	}
	for _, sc := range scens {
		var pt PhaseTiming
		pt.Dataset = sc.name
		start := time.Now()
		t := Run(sc.s)
		pt.Training = time.Since(start).Seconds()

		m := t.Server.Model.Clone()
		evalFn := t.ValidationEvaluator()
		clients := fl.ReportClients(t.Participants)
		cfg := core.DefaultPipelineConfig()
		layerIdx := m.LastConvIndex()

		start = time.Now()
		order := core.GlobalPruneOrder(m, clients, layerIdx, cfg)
		core.PruneToThreshold(m, layerIdx, order, evalFn, evalFn.Evaluate(m)-cfg.MaxAccuracyDrop, 0)
		pt.Pruning = time.Since(start).Seconds()

		start = time.Now()
		core.FineTune(m, t.Server, cfg.FineTuneRounds, cfg.FineTunePatience, evalFn)
		pt.FineTuning = time.Since(start).Seconds()

		start = time.Now()
		aw := cfg.AW
		aw.MinAccuracy = evalFn.Evaluate(m) - cfg.AWMaxAccuracyDrop
		for _, li := range core.DefaultAWLayers(m, layerIdx) {
			core.AdjustWeights(m, li, aw, evalFn)
		}
		pt.AW = time.Since(start).Seconds()
		out = append(out, pt)
	}
	return out
}

// Fig10 reproduces Figure 10: training with an L2 penalty of weight λ on
// the last convolutional layer, tracing TA and AA per round.
func Fig10(lambdas []float64) *Figure {
	fig := &Figure{Title: "Fig. 10 — last-conv L2 regularization λ", XLabel: "round"}
	for _, lambda := range lambdas {
		s := MNISTScenario(9, 2)
		s.LastConvL2 = lambda
		t := Build(s)
		var xs, tas, aas []float64
		t.Server.Train(func(round int) {
			xs = append(xs, float64(round))
			tas = append(tas, t.TA())
			aas = append(aas, t.AA())
		})
		fig.Series = append(fig.Series,
			Series{Name: fmt.Sprintf("TA λ=%g", lambda), X: xs, Y: tas},
			Series{Name: fmt.Sprintf("AA λ=%g", lambda), X: xs, Y: aas},
		)
	}
	return fig
}

// RenderTimings formats Fig. 9 measurements.
func RenderTimings(ts []PhaseTiming) string {
	out := "Fig. 9 — wall-clock seconds per phase\n"
	out += fmt.Sprintf("%-8s %10s %10s %10s %10s\n", "dataset", "training", "pruning", "fine-tune", "aw")
	for _, t := range ts {
		out += fmt.Sprintf("%-8s %10.2f %10.2f %10.2f %10.2f\n",
			t.Dataset, t.Training, t.Pruning, t.FineTuning, t.AW)
	}
	return out
}
