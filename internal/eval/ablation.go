package eval

import (
	"fmt"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// Ablation studies for the design decisions called out in DESIGN.md §5.
// They are not paper artifacts; they justify implementation choices.

// AblationMaskedPruning compares masked pruning (the library's default:
// pruned units are pinned to zero through fine-tuning) against zero-only
// pruning (weights zeroed once, free to regrow). The paper's pipeline
// fine-tunes with attackers present, so resurrection is a live risk; this
// ablation quantifies it. Returns a table with both variants after
// fine-tuning.
func AblationMaskedPruning(pair Pair) *Table {
	tbl := &Table{
		Title: "Ablation — masked vs zero-only pruning (after fine-tuning)",
		Modes: []string{"training", "masked", "zero-only"},
	}
	t := Run(MNISTScenario(pair.VL, pair.AL))
	row := Row{Label: pair.String(), Cells: map[string]Cell{
		"training": {TA: t.TA(), AA: t.AA()},
	}}

	layerIdx := t.Server.Model.LastConvIndex()
	clients := fl.ReportClients(t.Participants)
	cfg := core.DefaultPipelineConfig()
	order := core.GlobalPruneOrder(t.Server.Model, clients, layerIdx, cfg)
	evalFn := t.ValidationEvaluator()

	// Masked variant: the standard pipeline path.
	masked := t.Server.Model.Clone()
	res := core.PruneToThreshold(masked, layerIdx, order, evalFn, evalFn.Evaluate(masked)-cfg.MaxAccuracyDrop, 0)
	core.FineTune(masked, t.Server, cfg.FineTuneRounds, cfg.FineTunePatience, evalFn)
	row.Cells["masked"] = Cell{TA: t.ModelTA(masked), AA: t.ModelAA(masked)}

	// Zero-only variant: zero the same units' weights without a mask, then
	// fine-tune — aggregated updates may resurrect them.
	zeroOnly := t.Server.Model.Clone()
	zeroUnits(zeroOnly, layerIdx, res.Pruned)
	core.FineTune(zeroOnly, t.Server, cfg.FineTuneRounds, cfg.FineTunePatience, evalFn)
	row.Cells["zero-only"] = Cell{TA: t.ModelTA(zeroOnly), AA: t.ModelAA(zeroOnly)}

	tbl.Rows = append(tbl.Rows, row)
	return tbl
}

// zeroUnits zeroes the parameters of the given output units without
// installing a prune mask.
func zeroUnits(m *nn.Sequential, layerIdx int, units []int) {
	switch l := m.Layer(layerIdx).(type) {
	case *nn.Conv2D:
		fanIn := l.W.Value.Dim(1)
		for _, u := range units {
			for j := 0; j < fanIn; j++ {
				l.W.Value.Data[u*fanIn+j] = 0
			}
			l.B.Value.Data[u] = 0
		}
	case *nn.Dense:
		for _, u := range units {
			for i := 0; i < l.In(); i++ {
				l.W.Value.Data[i*l.Out()+u] = 0
			}
			l.B.Value.Data[u] = 0
		}
	default:
		panic(fmt.Sprintf("eval: zeroUnits on non-prunable layer %d", layerIdx))
	}
}

// AblationVoteRate sweeps MVP's pruning rate p and reports the pruned
// count, TA and AA of the FP+AW defense at each rate (the paper reports
// 0.3-0.7 as the useful band).
func AblationVoteRate(pair Pair, rates []float64) *Table {
	tbl := &Table{
		Title:     "Ablation — MVP vote rate p (FP+AW)",
		Modes:     []string{"fp+aw"},
		ExtraCols: []string{"pruned"},
	}
	t := Run(MNISTScenario(pair.VL, pair.AL))
	for _, p := range rates {
		cfg := core.DefaultPipelineConfig()
		cfg.VoteRate = p
		cfg.FineTuneRounds = 0
		m, rep := t.Defend(cfg)
		tbl.Rows = append(tbl.Rows, Row{
			Label: fmt.Sprintf("p=%.1f", p),
			Cells: map[string]Cell{
				"fp+aw": {TA: t.ModelTA(m), AA: t.ModelAA(m)},
			},
			Extra: map[string]int{"pruned": len(rep.Prune.Pruned)},
		})
	}
	return tbl
}

// AblationAWLayers compares the extreme-weight adjustment applied to the
// last conv layer only (the paper's literal procedure) against the
// library default (last conv plus the first dense layer after it), the
// geometry adaptation documented in DESIGN.md.
func AblationAWLayers(pair Pair) *Table {
	tbl := &Table{
		Title: "Ablation — AW target layers (no fine-tuning)",
		Modes: []string{"training", "last-conv", "conv+dense"},
	}
	t := Run(MNISTScenario(pair.VL, pair.AL))
	row := Row{Label: pair.String(), Cells: map[string]Cell{
		"training": {TA: t.TA(), AA: t.AA()},
	}}
	layerIdx := t.Server.Model.LastConvIndex()

	convOnly := core.DefaultPipelineConfig()
	convOnly.FineTuneRounds = 0
	convOnly.AWLayers = []int{layerIdx}
	m, _ := t.Defend(convOnly)
	row.Cells["last-conv"] = Cell{TA: t.ModelTA(m), AA: t.ModelAA(m)}

	both := core.DefaultPipelineConfig()
	both.FineTuneRounds = 0
	m, _ = t.Defend(both)
	row.Cells["conv+dense"] = Cell{TA: t.ModelTA(m), AA: t.ModelAA(m)}

	tbl.Rows = append(tbl.Rows, row)
	return tbl
}

// AdaptiveAttackTable evaluates the §VI-B adaptive attacks against the
// full defense: the rank-manipulating, accuracy-lying attacker (Attack 1),
// the pruning-aware attacker (Attack 2, given the true prune order), and
// the AW-aware self-clipping attacker.
func AdaptiveAttackTable(pair Pair) *Table {
	tbl := &Table{
		Title: "Discussion §VI-B — adaptive attacks vs the full defense",
		Modes: []string{"training", "all"},
	}
	variants := []struct {
		name  string
		setup func(t *Trained)
	}{
		{"baseline", func(*Trained) {}},
		{"rank-manipulating", func(t *Trained) {
			for _, a := range t.Attackers {
				a.SetDefenseBehavior(fl.AttackerDefenseBehavior{ManipulateRanks: true, LieAccuracy: true})
			}
		}},
		{"aw-aware self-clip", func(t *Trained) {
			for _, a := range t.Attackers {
				a.SelfClipDelta = 3
			}
		}},
		{"pruning-aware", func(t *Trained) {
			// Give the attacker the oracle prune order (the paper calls
			// obtaining it "nearly impossible"; this is the worst case): a
			// shadow run of the same scenario is trained to convergence and
			// its aggregated prune order handed to the attackers.
			shadow := Run(t.Scenario)
			li := shadow.Server.Model.LastConvIndex()
			cfg := core.DefaultPipelineConfig()
			order := core.GlobalPruneOrder(shadow.Server.Model, fl.ReportClients(shadow.Participants), li, cfg)
			avoid := order[:len(order)/2]
			for _, a := range t.Attackers {
				a.AvoidLayer = li
				a.AvoidUnits = append([]int(nil), avoid...)
			}
		}},
	}
	for _, v := range variants {
		t := Build(MNISTScenario(pair.VL, pair.AL))
		v.setup(t)
		t.Server.Train(nil)
		row := Row{Label: v.name, Cells: map[string]Cell{
			"training": {TA: t.TA(), AA: t.AA()},
		}}
		m, _ := t.DefendMode("all")
		row.Cells["all"] = Cell{TA: t.ModelTA(m), AA: t.ModelAA(m)}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl
}
