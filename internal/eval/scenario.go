// Package eval is the experiment harness of the fedcleanse reproduction:
// it wires datasets, models, federated training, attacks and the defense
// pipeline into the named scenarios of the paper's evaluation section, and
// renders the paper's tables and figures from measured results.
package eval

import (
	"fmt"
	"math/rand"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// Scenario describes one federated backdoor experiment end to end.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Gen generates the train/test splits.
	Gen func(dataset.GenConfig) (*dataset.Dataset, *dataset.Dataset)
	// GenCfg parameterizes generation.
	GenCfg dataset.GenConfig
	// Build constructs the model architecture.
	Build nn.ModelBuilder

	// Clients is the population size; Attackers of them are malicious.
	Clients, Attackers int
	// KLabels is the non-IID distribution parameter (labels per client).
	KLabels int
	// PerClient is the local shard size.
	PerClient int

	// FL configures federated training.
	FL fl.Config
	// Gamma is the model-replacement amplification coefficient.
	Gamma float64
	// Poison is the backdoor task. Poison.Trigger must be set unless DBA
	// is true, in which case the DBA global pattern is used and decomposed
	// across the attackers.
	Poison dataset.PoisonConfig
	// DBA switches to the Distributed Backdoor Attack.
	DBA bool

	// LastConvL2 applies an extra L2 penalty to the last convolutional
	// layer during training (the paper's §VI-A regularization study).
	LastConvL2 float64

	// Backend selects the numeric backend for every model derived from the
	// scenario's template (clients, attackers, defense clones). The zero
	// value is nn.Float64, the canonical reference arithmetic; nn.Float32
	// runs layer kernels in float32 while aggregation, optimizer state and
	// checkpoints stay float64 (DESIGN.md §13).
	Backend nn.Backend

	// ReportQuant selects the precision every participant records its
	// activation report at (DESIGN.md §14). The zero value is the float64
	// reference; metrics.ReportInt8 ranks and votes on affine-quantized
	// int8 codes, the representation the compact wire ships.
	ReportQuant metrics.ReportQuant

	// Seed drives every stochastic choice in the scenario.
	Seed int64
}

// defaultBackend is the numeric backend stamped onto scenarios returned by
// the constructors below. Experiment drivers (cmd/fedbench) that build many
// scenarios through the table/figure helpers set it once from their
// -backend flag instead of threading the choice through every call.
var defaultBackend nn.Backend

// SetDefaultBackend sets the numeric backend future scenario constructors
// stamp onto their Scenario (the zero default is nn.Float64). It returns
// the previous default. Not safe for concurrent use with scenario
// construction; call it once at startup.
func SetDefaultBackend(b nn.Backend) nn.Backend {
	prev := defaultBackend
	defaultBackend = b
	return prev
}

// MNISTScenario returns the paper's MNIST-scale setting: 10 clients, one
// attacker, 3-label non-IID shards, small CNN, 3-pixel trigger.
func MNISTScenario(victim, target int) Scenario {
	return Scenario{
		Name:      fmt.Sprintf("mnist %d->%d", victim, target),
		Gen:       dataset.GenSynthMNIST,
		GenCfg:    dataset.GenConfig{TrainPerClass: 150, TestPerClass: 70, Seed: 11},
		Build:     nn.NewSmallCNN,
		Clients:   10,
		Attackers: 1,
		KLabels:   3,
		PerClient: 100,
		FL:        fl.Config{Rounds: 22, LocalEpochs: 2, BatchSize: 20, LR: 0.05, Momentum: 0, WeightDecay: 1e-4},
		Gamma:     6,
		Poison: dataset.PoisonConfig{
			Trigger:     dataset.PixelPattern(3, dataset.Shape{C: 1, H: 16, W: 16}),
			VictimLabel: victim,
			TargetLabel: target,
			Copies:      2,
		},
		Backend: defaultBackend,
		Seed:    1,
	}
}

// FashionScenario returns the Fashion-MNIST-scale setting: single-pixel
// trigger, three-conv CNN (Table II).
func FashionScenario(victim, target int) Scenario {
	s := MNISTScenario(victim, target)
	s.Name = fmt.Sprintf("fashion %d->%d", victim, target)
	s.Gen = dataset.GenSynthFashion
	s.Build = nn.NewFashionCNN
	s.FL.Rounds = 12
	s.Poison.Trigger = dataset.PixelPattern(1, dataset.Shape{C: 1, H: 16, W: 16})
	return s
}

// CIFARScenario returns the CIFAR-scale DBA setting: MiniVGG, four
// attackers each carrying one quarter of the global trigger (Table III).
func CIFARScenario(victim, target int) Scenario {
	return Scenario{
		Name:      fmt.Sprintf("cifar-dba %d->%d", victim, target),
		Gen:       dataset.GenSynthCIFAR,
		GenCfg:    dataset.GenConfig{TrainPerClass: 150, TestPerClass: 70, Seed: 13},
		Build:     nn.NewMiniVGG,
		Clients:   10,
		Attackers: 4,
		KLabels:   3,
		PerClient: 100,
		FL:        fl.Config{Rounds: 20, LocalEpochs: 2, BatchSize: 20, LR: 0.05, Momentum: 0, WeightDecay: 1e-4},
		Gamma:     2,
		DBA:       true,
		Poison: dataset.PoisonConfig{
			Trigger:     dataset.DBAGlobalPattern(dataset.Shape{C: 3, H: 16, W: 16}),
			VictimLabel: victim,
			TargetLabel: target,
		},
		Backend: defaultBackend,
		Seed:    2,
	}
}

// Trained is a fully-built scenario after federated training.
type Trained struct {
	Scenario     Scenario
	Server       *fl.Server
	Participants []fl.Participant
	Attackers    []*fl.Attacker
	// Test is the benign evaluation split; Validation is the disjoint
	// slice of it the server uses as its defense guard.
	Test, Validation *dataset.Dataset

	// Lazily-built cached evaluators (metrics.SuffixEvaluator), one per
	// evaluation set, so batch buffers, the memoized poisoned test set and
	// prefix-activation caches are shared by every probe and defense loop
	// on this Trained. The harness is single-goroutine, which these
	// evaluators require.
	valEval, testEval, asrEval *metrics.SuffixEvaluator
}

// Components deterministically derives a scenario's shared pieces: the
// model template, the per-client shards, and the test/validation splits.
// Distinct processes calling Components with the same Scenario get
// identical results, which is what cmd/fedclient and cmd/fedserve rely on
// to run one federation across OS processes.
func Components(s Scenario) (template *nn.Sequential, shards []*dataset.Dataset, test, validation *dataset.Dataset) {
	rng := rand.New(rand.NewSource(s.Seed))
	train, testAll := s.Gen(s.GenCfg)
	in := nn.Input{C: train.Shape.C, H: train.Shape.H, W: train.Shape.W}
	template = s.Build(in, train.Classes, rng)
	// The backend rides on the template: fl.NewClient/NewAttacker and every
	// defense loop derive their models via Clone, which preserves it.
	template.SetBackend(s.Backend)
	if s.LastConvL2 > 0 {
		li := template.LastConvIndex()
		if li >= 0 {
			template.Layer(li).(*nn.Conv2D).SetL2(s.LastConvL2)
		}
	}
	shards = dataset.PartitionKLabelForced(train, s.Clients, s.KLabels, s.PerClient, rng, s.Poison.VictimLabel, s.Attackers)
	// The server's validation set is a disjoint 30% slice of the test
	// split; reported test accuracy uses the remaining 70%.
	nVal := testAll.Len() * 3 / 10
	validation = &dataset.Dataset{Shape: testAll.Shape, Classes: testAll.Classes, Samples: testAll.Samples[:nVal]}
	test = &dataset.Dataset{Shape: testAll.Shape, Classes: testAll.Classes, Samples: testAll.Samples[nVal:]}
	return template, shards, test, validation
}

// ParticipantFor deterministically constructs the scenario's i-th
// participant (an attacker for i < s.Attackers, an honest client
// otherwise) from pieces obtained via Components. Distinct processes
// calling it with equal arguments build equivalent participants.
func ParticipantFor(s Scenario, i int, template *nn.Sequential, shard *dataset.Dataset) fl.Participant {
	if i >= s.Attackers {
		c := fl.NewClient(i, shard, template, s.FL, s.Seed+200+int64(i))
		c.SetReportQuant(s.ReportQuant)
		return c
	}
	poison := s.Poison
	if s.DBA {
		poison.Trigger = s.Poison.Trigger.Decompose(s.Attackers)[i]
	}
	a := fl.NewAttacker(i, shard, template, s.FL, poison, s.Gamma, s.Seed+100+int64(i))
	a.ScaleFromRound = s.FL.Rounds / 2
	a.SetReportQuant(s.ReportQuant)
	return a
}

// Build constructs the population and server for a scenario without
// training (exposed for experiments that trace training rounds).
func Build(s Scenario) *Trained {
	template, shards, evalTest, validation := Components(s)

	var parts []fl.Participant
	var attackers []*fl.Attacker
	for i := 0; i < s.Clients; i++ {
		p := ParticipantFor(s, i, template, shards[i])
		parts = append(parts, p)
		if a, ok := p.(*fl.Attacker); ok {
			attackers = append(attackers, a)
		}
	}
	server := fl.NewServer(template, parts, s.FL, s.Seed+300)

	return &Trained{
		Scenario:     s,
		Server:       server,
		Participants: parts,
		Attackers:    attackers,
		Test:         evalTest,
		Validation:   validation,
	}
}

// Run builds and federatedly trains a scenario.
func Run(s Scenario) *Trained {
	t := Build(s)
	t.Server.Train(nil)
	return t
}

// TestEvaluator returns the cached benign-accuracy evaluator over the test
// split (scores are fractions; TA/ModelTA scale to percent).
func (t *Trained) TestEvaluator() *metrics.SuffixEvaluator {
	if t.testEval == nil {
		t.testEval = metrics.NewSuffixEvaluator(t.Test, 0)
	}
	return t.testEval
}

// ASREvaluator returns the cached attack-success evaluator: the poisoned
// test set is built once here and reused by every AA probe and sweep,
// instead of being re-poisoned per metrics.AttackSuccessRate call.
func (t *Trained) ASREvaluator() *metrics.SuffixEvaluator {
	if t.asrEval == nil {
		t.asrEval = metrics.NewCachedASR(t.Test, t.Scenario.Poison, 0)
	}
	return t.asrEval
}

// TA returns the global model's benign test accuracy (percent).
func (t *Trained) TA() float64 {
	return 100 * t.TestEvaluator().Evaluate(t.Server.Model)
}

// AA returns the attack success rate (percent) of the scenario's backdoor
// task against the global model, always evaluated with the full (global)
// trigger.
func (t *Trained) AA() float64 {
	return 100 * t.ASREvaluator().Evaluate(t.Server.Model)
}

// ModelTA and ModelAA evaluate an arbitrary model under this scenario's
// test split and backdoor task.
func (t *Trained) ModelTA(m *nn.Sequential) float64 {
	return 100 * t.TestEvaluator().Evaluate(m)
}

// ModelAA evaluates attack success of m (percent).
func (t *Trained) ModelAA(m *nn.Sequential) float64 {
	return 100 * t.ASREvaluator().Evaluate(m)
}

// ValidationEvaluator returns the defense's accuracy guard: accuracy on
// the server's validation slice, as a cached evaluator so the pipeline's
// mutate-then-evaluate loops replay only suffix layers per step.
func (t *Trained) ValidationEvaluator() core.ScopedEvaluator {
	if t.valEval == nil {
		t.valEval = metrics.NewSuffixEvaluator(t.Validation, 0)
	}
	return t.valEval
}

// Defend clones the trained global model and runs the defense pipeline on
// the clone, returning it with the pipeline report. The trained server
// remains untouched, so multiple defense configurations can be compared.
func (t *Trained) Defend(cfg core.PipelineConfig) (*nn.Sequential, core.Report) {
	m := t.Server.Model.Clone()
	rep := core.RunPipeline(m, fl.ReportClients(t.Participants), t.Server, t.ValidationEvaluator(), cfg)
	return m, rep
}
