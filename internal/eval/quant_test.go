package eval

import (
	"math"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
)

// setReportQuant flips every participant's report precision in place.
// Report precision never feeds back into training, so one trained
// federation serves both defense runs.
func setReportQuant(parts []fl.Participant, q metrics.ReportQuant) {
	for _, p := range parts {
		p.(interface{ SetReportQuant(metrics.ReportQuant) }).SetReportQuant(q)
	}
}

// TestInt8ReportMNISTDefenseParity is the end-to-end fidelity gate for
// int8 activation reports (DESIGN.md §14): on the paper's MNIST scenario
// the defense driven by quantized reports must (a) produce a global prune
// order that agrees with the float64 reference everywhere except where
// quantization genuinely ties neighbouring activations, and (b) land the
// defended model within 0.5 percentage points of the reference on both
// benign test accuracy and attack success rate.
func TestInt8ReportMNISTDefenseParity(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end federated training is slow")
	}
	tr := Run(MNISTScenario(9, 2))
	clients := fl.ReportClients(tr.Participants)
	li := tr.Server.Model.LastConvIndex()

	// Report collection is pure evaluation — flipping the precision on the
	// same trained federation isolates quantization exactly.
	order := func(method core.PruneMethod, q metrics.ReportQuant) []int {
		setReportQuant(tr.Participants, q)
		cfg := core.DefaultPipelineConfig()
		cfg.Method = method
		return core.GlobalPruneOrder(tr.Server.Model, clients, li, cfg)
	}
	for _, method := range []core.PruneMethod{core.RAP, core.MVP} {
		o64 := order(method, metrics.ReportFloat64)
		o8 := order(method, metrics.ReportInt8)
		if len(o64) != len(o8) || len(o64) == 0 {
			t.Fatalf("%v: order lengths %d vs %d", method, len(o64), len(o8))
		}
		same, prefix := 0, 0
		for i := range o64 {
			if o64[i] == o8[i] {
				same++
				if prefix == i {
					prefix++
				}
			}
		}
		frac := float64(same) / float64(len(o64))
		t.Logf("%v: %d/%d positions agree (%.0f%%), common prefix %d", method, same, len(o64), 100*frac, prefix)
		// Pinned on the seeded scenario: the trained activations are far
		// enough apart that 8-bit codes never tie them, so the quantized
		// prune order matches the float64 reference exactly. A partial
		// mismatch here means the quantizer or the int8 rank/vote
		// constructors regressed, not benign noise.
		if same != len(o64) {
			t.Errorf("%v: only %d/%d prune-order positions agree with the float64 reference", method, same, len(o64))
		}
	}

	// Defense runs fine-tuning, which advances the participants' RNG
	// state, so each precision defends its own freshly trained (and, by
	// seeding, identical) federation — exactly like the float32 backend
	// parity test.
	defend := func(q metrics.ReportQuant) (ta, aa float64) {
		s := MNISTScenario(9, 2)
		s.ReportQuant = q
		run := Run(s)
		m, _ := run.Defend(core.DefaultPipelineConfig())
		return run.ModelTA(m), run.ModelAA(m)
	}
	ta64, aa64 := defend(metrics.ReportFloat64)
	ta8, aa8 := defend(metrics.ReportInt8)
	t.Logf("float64 reports: TA=%.2f AA=%.2f; int8 reports: TA=%.2f AA=%.2f", ta64, aa64, ta8, aa8)
	if d := math.Abs(ta64 - ta8); d > 0.5 {
		t.Errorf("TA differs by %.2f pp across report precisions (float64 %.2f, int8 %.2f), want <= 0.5", d, ta64, ta8)
	}
	if d := math.Abs(aa64 - aa8); d > 0.5 {
		t.Errorf("ASR differs by %.2f pp across report precisions (float64 %.2f, int8 %.2f), want <= 0.5", d, aa64, aa8)
	}
}
