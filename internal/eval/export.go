package eval

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV emits the table as CSV: one header row, one row per setting,
// TA/AA pairs per mode, then the extra integer columns.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"setting"}
	for _, m := range t.Modes {
		header = append(header, m+"_ta", m+"_aa")
	}
	header = append(header, t.ExtraCols...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("eval: WriteCSV: %w", err)
	}
	for _, r := range t.Rows {
		rec := []string{r.Label}
		for _, m := range t.Modes {
			c := r.Cells[m]
			rec = append(rec,
				strconv.FormatFloat(c.TA, 'f', 2, 64),
				strconv.FormatFloat(c.AA, 'f', 2, 64))
		}
		for _, e := range t.ExtraCols {
			rec = append(rec, strconv.Itoa(r.Extra[e]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("eval: WriteCSV: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: WriteCSV: %w", err)
	}
	return nil
}

// WriteJSON emits the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("eval: WriteJSON: %w", err)
	}
	return nil
}

// WriteCSV emits the figure as CSV in long form: series, x, y.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", f.xLabelOrDefault(), "y"}); err != nil {
		return fmt.Errorf("eval: WriteCSV: %w", err)
	}
	for _, s := range f.Series {
		for i := range s.X {
			rec := []string{
				s.Name,
				strconv.FormatFloat(s.X[i], 'f', -1, 64),
				strconv.FormatFloat(s.Y[i], 'f', 4, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("eval: WriteCSV: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("eval: WriteCSV: %w", err)
	}
	return nil
}

// WriteJSON emits the figure as indented JSON.
func (f *Figure) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("eval: WriteJSON: %w", err)
	}
	return nil
}

func (f *Figure) xLabelOrDefault() string {
	if f.XLabel == "" {
		return "x"
	}
	return f.XLabel
}
