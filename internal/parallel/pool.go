package parallel

import (
	"fmt"
	"sync"

	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// Pool is a reusable bounded worker pool: a fixed set of goroutines that
// execute submitted tasks. Long-lived drivers (the federated server, the
// experiment harness) can hold one Pool for their whole lifetime instead
// of spawning goroutines per round.
//
// The zero Pool is not usable; construct with NewPool. Methods other than
// Close are safe for concurrent use. Tasks must not themselves submit to
// the same pool (the pool has no task queue beyond its rendezvous channel,
// so nested submission can deadlock once all workers are busy).
type Pool struct {
	workers int
	jobs    chan func()

	closeOnce sync.Once
	done      sync.WaitGroup
}

// NewPool starts a pool with the given number of worker goroutines.
// workers <= 0 resolves to Workers() at construction time.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = Workers()
	}
	p := &Pool{workers: workers, jobs: make(chan func())}
	p.done.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.done.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// Workers returns the pool's fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers after in-flight tasks finish. Submitting after
// Close panics. Close is idempotent.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		close(p.jobs)
		p.done.Wait()
	})
}

// Run executes every task on the pool and returns when all have finished.
// Panics are collected and the first is re-raised in the caller.
//
// Each task counts into parallel_pool_tasks_total; the
// parallel_pool_queue_depth gauge tracks tasks submitted but not yet
// finished. The bare For/ForBlocks loops carry the matching
// parallel_for_tasks_total / parallel_for_queue_depth pair, instrumented
// per block (never per index) so the tensor kernels' warm paths stay
// alloc-free and atomic-add cheap.
func (p *Pool) Run(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	var wg sync.WaitGroup
	var pr panicRecorder
	obs.M.PoolTasks.Add(uint64(len(tasks)))
	for _, task := range tasks {
		task := task
		wg.Add(1)
		obs.M.PoolQueueDepth.Inc()
		p.jobs <- func() {
			defer wg.Done()
			defer obs.M.PoolQueueDepth.Dec()
			defer func() {
				if v := recover(); v != nil {
					pr.record(v)
				}
			}()
			task()
		}
	}
	wg.Wait()
	pr.repanic()
}

// For runs f(i) for every i in [0,n) on the pool's workers, with the same
// deterministic partitioning and exactly-once-under-panic semantics as the
// package-level For.
func (p *Pool) For(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	var pr panicRecorder
	blocks := Partition(n, w)
	tasks := make([]func(), len(blocks))
	for bi, blk := range blocks {
		lo, hi := blk[0], blk[1]
		tasks[bi] = func() {
			for i := lo; i < hi; i++ {
				callRecover(&pr, f, i)
			}
		}
	}
	p.Run(tasks...)
	pr.repanic()
}

// String implements fmt.Stringer for diagnostics.
func (p *Pool) String() string {
	return fmt.Sprintf("parallel.Pool(workers=%d)", p.workers)
}
