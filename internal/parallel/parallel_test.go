package parallel

import (
	"sync/atomic"
	"testing"
)

// withWorkers runs f with the worker override pinned to n, restoring the
// previous override afterwards.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

func TestWorkersOverride(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	if got := SetWorkers(0); got != 3 {
		t.Fatalf("SetWorkers returned previous override %d, want 3", got)
	}
	if got := Workers(); got < 1 {
		t.Fatalf("automatic Workers() = %d, want >= 1", got)
	}
}

func TestPartitionCoversExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 1}, {1, 8}, {7, 3}, {8, 3}, {9, 3}, {100, 7}, {5, 5},
	} {
		blocks := Partition(tc.n, tc.parts)
		seen := make([]int, tc.n)
		prevHi := 0
		for _, b := range blocks {
			if b[0] != prevHi {
				t.Fatalf("Partition(%d,%d): block starts at %d, want %d", tc.n, tc.parts, b[0], prevHi)
			}
			if b[1] <= b[0] {
				t.Fatalf("Partition(%d,%d): empty block %v", tc.n, tc.parts, b)
			}
			for i := b[0]; i < b[1]; i++ {
				seen[i]++
			}
			prevHi = b[1]
		}
		if tc.n > 0 && prevHi != tc.n {
			t.Fatalf("Partition(%d,%d): covers [0,%d)", tc.n, tc.parts, prevHi)
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("Partition(%d,%d): index %d covered %d times", tc.n, tc.parts, i, c)
			}
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	blocks := Partition(10, 4)
	if len(blocks) != 4 {
		t.Fatalf("got %d blocks, want 4", len(blocks))
	}
	sizes := []int{}
	for _, b := range blocks {
		sizes = append(sizes, b[1]-b[0])
	}
	for _, s := range sizes {
		if s != 2 && s != 3 {
			t.Fatalf("unbalanced block sizes %v", sizes)
		}
	}
}

func TestPartitionPanicsOnBadParts(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Partition(4, 0) did not panic")
		}
	}()
	Partition(4, 0)
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 64} {
		withWorkers(t, w, func() {
			const n = 1000
			counts := make([]int32, n)
			For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d: index %d visited %d times", w, i, c)
				}
			}
		})
	}
}

// TestForExactlyOnceUnderPanic is the property test of the issue: a panic
// in one task must neither lose other indices nor double-visit any, and
// the panic must surface in the caller.
func TestForExactlyOnceUnderPanic(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		for _, bad := range []int{0, 17, 99} {
			withWorkers(t, w, func() {
				const n = 100
				counts := make([]int32, n)
				var recovered any
				func() {
					defer func() { recovered = recover() }()
					For(n, func(i int) {
						atomic.AddInt32(&counts[i], 1)
						if i == bad {
							panic("task failure")
						}
					})
				}()
				if recovered != "task failure" {
					t.Fatalf("workers=%d bad=%d: recovered %v, want task panic", w, bad, recovered)
				}
				for i, c := range counts {
					if c != 1 {
						t.Fatalf("workers=%d bad=%d: index %d visited %d times", w, bad, i, c)
					}
				}
			})
		}
	}
}

func TestForBlocksCoversRange(t *testing.T) {
	for _, w := range []int{1, 2, 5, 16} {
		withWorkers(t, w, func() {
			const n = 103
			counts := make([]int32, n)
			ForBlocks(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d: index %d covered %d times", w, i, c)
				}
			}
		})
	}
}

func TestForBlocksPropagatesPanic(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			if recover() != "block failure" {
				t.Fatal("block panic not propagated")
			}
		}()
		ForBlocks(16, func(lo, hi int) {
			if lo == 0 {
				panic("block failure")
			}
		})
	})
}

func TestForBlocksIndexedMatchesPartition(t *testing.T) {
	for _, w := range []int{1, 2, 5, 16} {
		withWorkers(t, w, func() {
			const n = 103
			want := Partition(n, NumBlocks(n))
			got := make([][2]int, len(want))
			hits := make([]int32, len(want))
			ForBlocksIndexed(n, func(blk, lo, hi int) {
				atomic.AddInt32(&hits[blk], 1)
				got[blk] = [2]int{lo, hi}
			})
			for blk := range want {
				if hits[blk] != 1 {
					t.Fatalf("workers=%d: block %d run %d times", w, blk, hits[blk])
				}
				if got[blk] != want[blk] {
					t.Fatalf("workers=%d: block %d = %v, want %v", w, blk, got[blk], want[blk])
				}
			}
		})
	}
}

func TestNumBlocks(t *testing.T) {
	withWorkers(t, 4, func() {
		for _, tc := range []struct{ n, want int }{
			{-1, 0}, {0, 0}, {1, 1}, {3, 3}, {4, 4}, {5, 4}, {100, 4},
		} {
			if got := NumBlocks(tc.n); got != tc.want {
				t.Fatalf("NumBlocks(%d) = %d with 4 workers, want %d", tc.n, got, tc.want)
			}
		}
	})
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(int) { called = true })
	For(-3, func(int) { called = true })
	ForBlocks(0, func(int, int) { called = true })
	if called {
		t.Fatal("empty ranges invoked the body")
	}
}

func TestPoolForVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		p := NewPool(w)
		const n = 500
		counts := make([]int32, n)
		p.For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("pool workers=%d: index %d visited %d times", w, i, c)
			}
		}
		p.Close()
	}
}

func TestPoolSurvivesTaskPanic(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("pool swallowed the panic")
			}
		}()
		p.For(10, func(i int) {
			if i == 3 {
				panic("boom")
			}
		})
	}()
	// The pool's workers must still be alive and usable after the panic.
	var n int32
	p.Run(func() { atomic.AddInt32(&n, 1) }, func() { atomic.AddInt32(&n, 1) })
	if n != 2 {
		t.Fatalf("pool ran %d tasks after panic, want 2", n)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}

func TestPoolWorkersDefault(t *testing.T) {
	withWorkers(t, 5, func() {
		p := NewPool(0)
		defer p.Close()
		if p.Workers() != 5 {
			t.Fatalf("NewPool(0).Workers() = %d, want 5", p.Workers())
		}
	})
}
