//go:build !race

package parallel

import (
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// Allocation-regression gates for the instrumented fan-out (ISSUE 10):
// the parallel_for_tasks_total counter and parallel_for_queue_depth gauge
// are recorded per block through atomics, so the single-worker inline
// path — the warm path inside every tensor kernel running under
// FEDCLEANSE_WORKERS=1 or on sub-block inputs — must stay alloc-free.
// Excluded under the race detector, whose instrumentation allocates.

var allocSink int

func TestForBlocksInlineWarmAllocFree(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	f := func(_, lo, hi int) { allocSink += hi - lo }
	if allocs := testing.AllocsPerRun(100, func() {
		ForBlocksIndexed(64, f)
	}); allocs != 0 {
		t.Errorf("warm inline ForBlocksIndexed: %v allocs/op, want 0", allocs)
	}
}

// TestForBlocksCounters pins the per-block accounting: one task per block,
// and the queue-depth gauge drains back to its starting level.
func TestForBlocksCounters(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	tasks0 := obs.M.ForTasks.Value()
	depth0 := obs.M.ForQueueDepth.Value()
	ForBlocksIndexed(100, func(_, _, _ int) {})
	if got := obs.M.ForTasks.Value() - tasks0; got != 4 {
		t.Errorf("fanned-out ForBlocksIndexed counted %d tasks, want 4", got)
	}
	if got := obs.M.ForQueueDepth.Value(); got != depth0 {
		t.Errorf("queue depth did not drain: %d, want %d", got, depth0)
	}
	SetWorkers(1)
	tasks0 = obs.M.ForTasks.Value()
	ForBlocksIndexed(100, func(_, _, _ int) {})
	if got := obs.M.ForTasks.Value() - tasks0; got != 1 {
		t.Errorf("inline ForBlocksIndexed counted %d tasks, want 1", got)
	}
}
