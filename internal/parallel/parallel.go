// Package parallel provides the bounded worker pool and deterministic work
// partitioning behind the repository's concurrent hot paths: per-client
// local training in internal/fl, per-client activation reports in
// internal/core, and the row-blocked tensor kernels in internal/tensor.
//
// Determinism contract: For and ForBlocks split [0,n) into contiguous
// blocks whose boundaries depend only on n and the worker count, and every
// index is owned by exactly one block. Callers that write results only
// into per-index (or per-block) destinations therefore produce
// bit-identical output for every worker count, including 1 — the property
// the simulation and kernel tests assert.
//
// The worker count resolves, in priority order, to the SetWorkers override,
// the FEDCLEANSE_WORKERS environment variable, and finally GOMAXPROCS.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/fedcleanse/fedcleanse/internal/obs"
)

// EnvWorkers is the environment variable that pins the worker count for a
// whole process, e.g. FEDCLEANSE_WORKERS=1 to force every parallel path
// serial when reproducing paper tables.
const EnvWorkers = "FEDCLEANSE_WORKERS"

// override holds the process-wide worker-count override installed by
// SetWorkers; 0 means automatic (environment variable or GOMAXPROCS).
var override atomic.Int64

// envWorkers caches the EnvWorkers value read at startup. Invalid or
// non-positive values are ignored.
var envWorkers = func() int {
	s := os.Getenv(EnvWorkers)
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		fmt.Fprintf(os.Stderr, "parallel: ignoring invalid %s=%q\n", EnvWorkers, s)
		return 0
	}
	return n
}()

// Workers returns the effective worker count: the SetWorkers override if
// one is installed, else FEDCLEANSE_WORKERS, else GOMAXPROCS.
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	if envWorkers > 0 {
		return envWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers installs a process-wide worker-count override and returns the
// previous override (0 means automatic). n <= 0 removes the override.
// Benchmarks and tests use it to compare serial and parallel execution of
// the same code path.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(override.Swap(int64(n)))
}

// Partition splits [0,n) into at most parts contiguous half-open ranges
// {lo,hi} of near-equal size (the first n%parts ranges are one larger).
// The boundaries are a pure function of n and parts, which is what makes
// block-parallel execution deterministic. parts <= 0 panics; n <= 0
// returns nil.
func Partition(n, parts int) [][2]int {
	if parts <= 0 {
		panic(fmt.Sprintf("parallel: Partition into %d parts", parts))
	}
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	base, rem := n/parts, n%parts
	out := make([][2]int, parts)
	lo := 0
	for i := range out {
		hi := lo + base
		if i < rem {
			hi++
		}
		out[i] = [2]int{lo, hi}
		lo = hi
	}
	return out
}

// panicRecorder collects the first panic raised by any task so the caller
// can re-raise it after every worker has drained. Recording instead of
// crashing keeps the exactly-once visit guarantee: one panicking index
// never prevents sibling indices from running.
type panicRecorder struct {
	mu  sync.Mutex
	set bool
	val any
}

func (r *panicRecorder) record(v any) {
	r.mu.Lock()
	if !r.set {
		r.set, r.val = true, v
	}
	r.mu.Unlock()
}

// repanic re-raises the first recorded panic, if any. It must only be
// called after all tasks finished (e.g. past a WaitGroup.Wait), which
// orders the record before the read.
func (r *panicRecorder) repanic() {
	if r.set {
		panic(r.val)
	}
}

// ForBlocks runs f over the deterministic Partition of [0,n), one block
// per worker goroutine (inline when a single worker suffices). It returns
// after every block completed; if any block panicked, the first panic is
// re-raised in the caller's goroutine.
func ForBlocks(n int, f func(lo, hi int)) {
	ForBlocksIndexed(n, func(_, lo, hi int) { f(lo, hi) })
}

// ForBlocksIndexed is ForBlocks with the block's index passed to f. blk is
// the block's position in Partition(n, NumBlocks(n)) — a pure function of n
// and the worker count — so callers can key reusable per-block scratch
// buffers on it without races: block blk is executed by exactly one
// goroutine per call.
func ForBlocksIndexed(n int, f func(blk, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := NumBlocks(n)
	if w <= 1 {
		obs.M.ForTasks.Inc()
		f(0, 0, n)
		return
	}
	// One counter add and one gauge inc/dec per *block*, never per index:
	// atomics don't allocate, so the kernels' alloc gates hold (see
	// alloc_test.go), and the per-call cost is noise next to the block's
	// work. The queue-depth gauge covers only the fanned-out blocks — the
	// inline path above never queues.
	obs.M.ForTasks.Add(uint64(w))
	var wg sync.WaitGroup
	var pr panicRecorder
	for i, b := range Partition(n, w) {
		blk, lo, hi := i, b[0], b[1]
		wg.Add(1)
		obs.M.ForQueueDepth.Inc()
		go func() {
			defer wg.Done()
			defer obs.M.ForQueueDepth.Dec()
			defer func() {
				if v := recover(); v != nil {
					pr.record(v)
				}
			}()
			f(blk, lo, hi)
		}()
	}
	wg.Wait()
	pr.repanic()
}

// NumBlocks returns the number of blocks ForBlocks/ForBlocksIndexed will
// split [0,n) into under the current worker count: min(Workers(), n), at
// least 1 for positive n. Callers sizing per-block scratch use it.
func NumBlocks(n int) int {
	if n <= 0 {
		return 0
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs f(i) for every i in [0,n) across the effective worker count.
// Every index is visited exactly once even when some calls panic: a panic
// is caught per index, the remaining indices still run, and the first
// panic is re-raised after all workers drain. Semantics are identical for
// every worker count.
func For(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	var pr panicRecorder
	ForBlocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			callRecover(&pr, f, i)
		}
	})
	pr.repanic()
}

// callRecover invokes f(i), diverting a panic into the recorder.
func callRecover(pr *panicRecorder, f func(int), i int) {
	defer func() {
		if v := recover(); v != nil {
			pr.record(v)
		}
	}()
	f(i)
}
