package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseReportQuant(t *testing.T) {
	cases := []struct {
		in   string
		want ReportQuant
		err  bool
	}{
		{"float64", ReportFloat64, false},
		{"f64", ReportFloat64, false},
		{"", ReportFloat64, false},
		{"int8", ReportInt8, false},
		{"i8", ReportInt8, false},
		{"int4", 0, true},
	}
	for _, c := range cases {
		got, err := ParseReportQuant(c.in)
		if (err != nil) != c.err {
			t.Fatalf("ParseReportQuant(%q) err = %v, want err=%v", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Fatalf("ParseReportQuant(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if ReportFloat64.String() != "float64" || ReportInt8.String() != "int8" {
		t.Fatalf("String(): %q / %q", ReportFloat64, ReportInt8)
	}
}

func TestQuantizeRoundtripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(700)
		acts := make([]float64, n)
		for i := range acts {
			acts[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
		}
		q := QuantizeActivations(acts)
		if len(q.Q) != n {
			t.Fatalf("len(Q) = %d, want %d", len(q.Q), n)
		}
		back := q.Dequantize()
		for i := range acts {
			if err := math.Abs(back[i] - acts[i]); err > q.Scale/2+1e-12 {
				t.Fatalf("trial %d unit %d: |%g - %g| = %g > scale/2 = %g",
					trial, i, back[i], acts[i], err, q.Scale/2)
			}
		}
	}
}

func TestQuantizeEndpointsExact(t *testing.T) {
	acts := []float64{3.5, -1.25, 0, 7.75, 2}
	q := QuantizeActivations(acts)
	back := q.Dequantize()
	// Min maps to code −128 and max to +127, both reconstructed exactly.
	if back[1] != -1.25 {
		t.Fatalf("min reconstructs to %g, want -1.25", back[1])
	}
	if math.Abs(back[3]-7.75) > 1e-12 {
		t.Fatalf("max reconstructs to %g, want 7.75", back[3])
	}
	if q.Q[1] != -128 || q.Q[3] != 127 {
		t.Fatalf("endpoint codes %d/%d, want -128/127", q.Q[1], q.Q[3])
	}
}

func TestQuantizeConstantAndEmpty(t *testing.T) {
	q := QuantizeActivations([]float64{2.5, 2.5, 2.5})
	if q.Scale != 0 || q.Zero != 2.5 {
		t.Fatalf("constant vector: Scale=%g Zero=%g", q.Scale, q.Zero)
	}
	for i, c := range q.Q {
		if c != -128 {
			t.Fatalf("constant vector code[%d] = %d, want -128", i, c)
		}
	}
	for _, v := range q.Dequantize() {
		if v != 2.5 {
			t.Fatalf("constant vector dequantizes to %g", v)
		}
	}
	q = QuantizeActivations(nil)
	if len(q.Q) != 0 || q.Scale != 0 || q.Zero != 0 {
		t.Fatalf("empty vector: %+v", q)
	}
}

func TestQuantizePreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	acts := make([]float64, 512)
	for i := range acts {
		acts[i] = rng.Float64() * 10
	}
	q := QuantizeActivations(acts)
	for i := range acts {
		for j := range acts {
			if acts[i] > acts[j] && q.Q[i] < q.Q[j] {
				t.Fatalf("order violated: acts[%d]=%g > acts[%d]=%g but codes %d < %d",
					i, acts[i], j, acts[j], q.Q[i], q.Q[j])
			}
		}
	}
}

func TestQuantizeReusesBuffers(t *testing.T) {
	var q QuantActs
	q.Quantize(make([]float64, 256))
	p0 := &q.Q[0]
	q.Quantize(make([]float64, 128))
	if len(q.Q) != 128 {
		t.Fatalf("len after shrink = %d", len(q.Q))
	}
	q.Quantize(make([]float64, 256))
	if &q.Q[0] != p0 {
		t.Fatal("Quantize reallocated a buffer it could reuse")
	}
	dst := make([]float64, 0, 256)
	out := q.DequantizeInto(dst)
	if &out[0] != &dst[:1][0] {
		t.Fatal("DequantizeInto reallocated a buffer it could reuse")
	}
}
