// Package metrics provides the shared evaluation primitives used across
// the federated-learning simulator, the defense pipeline and the
// experiment harness: plain test accuracy and the attack success rate.
package metrics

import (
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// DefaultBatch is the evaluation batch size used when callers pass 0.
const DefaultBatch = 64

// Accuracy returns the fraction of ds samples whose argmax prediction
// matches the label. batch ≤ 0 selects DefaultBatch.
func Accuracy(m *nn.Sequential, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	// Each batch's output is consumed (argmax) before the next pass, so the
	// whole loop can run on the model's reusable eval buffers.
	prev := m.EvalReuse()
	m.SetEvalReuse(true)
	defer m.SetEvalReuse(prev)
	correct := 0
	var (
		x      *tensor.Tensor
		labels []int
		pred   []int
	)
	for lo := 0; lo < ds.Len(); lo += batch {
		hi := lo + batch
		if hi > ds.Len() {
			hi = ds.Len()
		}
		x, labels = ds.BatchInto(lo, hi, x, labels)
		pred = nn.ArgmaxInto(pred, m.Forward(x, false))
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}

// AttackSuccessRate evaluates a backdoor: it builds the triggered
// victim-label test set for cfg and returns the fraction predicted as the
// attack target. This is the paper's AA metric.
func AttackSuccessRate(m *nn.Sequential, test *dataset.Dataset, cfg dataset.PoisonConfig, batch int) float64 {
	atk := dataset.PoisonTestSet(test, cfg)
	return Accuracy(m, atk, batch)
}

// LocalActivations records the paper's per-neuron average activation
// statistic a_i (§IV-A) for the Prunable layer at layerIdx of m, over every
// sample of ds. The result has one entry per output unit of that layer.
func LocalActivations(m *nn.Sequential, layerIdx int, ds *dataset.Dataset, batch int) []float64 {
	p, ok := m.Layer(layerIdx).(nn.Prunable)
	if !ok {
		panic("metrics: LocalActivations target layer is not prunable")
	}
	units := p.Units()
	if batch <= 0 {
		batch = DefaultBatch
	}
	// Activations are accumulated into sums before the next pass, so the
	// per-layer buffers can be reused batch over batch.
	prev := m.EvalReuse()
	m.SetEvalReuse(true)
	defer m.SetEvalReuse(prev)
	sums := make([]float64, units)
	obs := 0
	var (
		x      *tensor.Tensor
		labels []int
	)
	for lo := 0; lo < ds.Len(); lo += batch {
		hi := lo + batch
		if hi > ds.Len() {
			hi = ds.Len()
		}
		x, labels = ds.BatchInto(lo, hi, x, labels)
		acts := m.ForwardActivations(x)
		obs += nn.AccumulateUnitActivations(acts[layerIdx], units, sums)
	}
	if obs > 0 {
		inv := 1.0 / float64(obs)
		for i := range sums {
			sums[i] *= inv
		}
	}
	return sums
}

// MeanLoss returns the mean softmax cross-entropy loss over ds.
func MeanLoss(m *nn.Sequential, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	if batch <= 0 {
		batch = DefaultBatch
	}
	// Each batch's logits are consumed by the loss before the next pass, so
	// the whole loop can run on the model's reusable eval buffers.
	prev := m.EvalReuse()
	m.SetEvalReuse(true)
	defer m.SetEvalReuse(prev)
	total := 0.0
	var (
		x, dlogits *tensor.Tensor
		labels     []int
	)
	for lo := 0; lo < ds.Len(); lo += batch {
		hi := lo + batch
		if hi > ds.Len() {
			hi = ds.Len()
		}
		x, labels = ds.BatchInto(lo, hi, x, labels)
		logits := m.Forward(x, false)
		dlogits = tensor.EnsureShape(dlogits, logits.Dim(0), logits.Dim(1))
		loss := nn.SoftmaxXentInto(dlogits, logits, labels)
		total += loss * float64(hi-lo)
	}
	return total / float64(ds.Len())
}
