package metrics

import (
	"fmt"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/tensor"
)

// scopeMode is the SuffixEvaluator's current mutation scope.
type scopeMode int

const (
	scopeNone scopeMode = iota
	// scopeSuffix: mutations confined to layers ≥ boundary; the cache holds
	// activations entering the boundary layer.
	scopeSuffix
	// scopePrune: mutations are unit prunes of the layer just before the
	// boundary; the cache holds that layer's unpruned output and Evaluate
	// zeroes the currently-pruned channels before replaying the suffix.
	scopePrune
)

// SuffixEvaluator scores models on a fixed dataset and implements
// core.ScopedEvaluator with prefix-activation caching: inside a scope the
// dataset is run through the invariant prefix of the network once, the
// boundary activations are held in a batch-keyed cache, and every Evaluate
// replays only the suffix — bit-identical to a full forward pass, because
// the suffix executes the same ops on the same floats (DESIGN.md §9).
//
// Outside a scope (or for a model other than the scoped one) Evaluate
// falls back to a full forward pass with reusable batch buffers, returning
// exactly what Accuracy would.
//
// The evaluator owns reusable buffers and is therefore single-goroutine
// state, like the layers themselves; concurrent evaluations need one
// SuffixEvaluator each.
type SuffixEvaluator struct {
	ds    *dataset.Dataset
	batch int

	// labs caches every sample label in dataset order (batch b's labels are
	// labs[b·batch : ...]; the dataset is never reordered under us — the
	// defense loops evaluate a fixed validation split).
	labs []int

	// Reusable full-path buffers: batch assembly and predictions.
	x      *tensor.Tensor
	labels []int
	preds  []int

	// Scope state. acts holds one owned boundary-activation tensor per
	// batch; the backing buffers live in arena (batch-index keyed), so
	// repeated Begin/End cycles reuse them.
	mode     scopeMode
	bound    *nn.Sequential
	boundary int // first suffix layer: Evaluate replays layers [boundary, N)
	prunable nn.Prunable
	acts     []*tensor.Tensor
	arena    tensor.Arena
}

var _ interface {
	Evaluate(m *nn.Sequential) float64
	BeginSuffix(m *nn.Sequential, layerIdx int)
	BeginPrune(m *nn.Sequential, layerIdx int)
	EndScope()
} = (*SuffixEvaluator)(nil)

// NewSuffixEvaluator builds a cached accuracy evaluator over ds. batch ≤ 0
// selects DefaultBatch (matching Accuracy).
func NewSuffixEvaluator(ds *dataset.Dataset, batch int) *SuffixEvaluator {
	if batch <= 0 {
		batch = DefaultBatch
	}
	e := &SuffixEvaluator{ds: ds, batch: batch, labs: make([]int, ds.Len())}
	for i, s := range ds.Samples {
		e.labs[i] = s.Label
	}
	return e
}

// NewCachedASR builds a cached attack-success-rate evaluator: the poisoned
// test set is constructed once here instead of on every call (what
// AttackSuccessRate does), so sweeps stop re-poisoning the same images
// hundreds of times. Scores are identical to AttackSuccessRate — poisoning
// is deterministic.
func NewCachedASR(test *dataset.Dataset, cfg dataset.PoisonConfig, batch int) *SuffixEvaluator {
	return NewSuffixEvaluator(dataset.PoisonTestSet(test, cfg), batch)
}

// Dataset returns the evaluation set (for the cached ASR evaluator, the
// memoized poisoned split).
func (e *SuffixEvaluator) Dataset() *dataset.Dataset { return e.ds }

// Evaluate implements core.ScopedEvaluator: accuracy of m over the
// evaluator's dataset. Inside a scope bound to m only the suffix layers
// run; any other model gets a full forward pass.
func (e *SuffixEvaluator) Evaluate(m *nn.Sequential) float64 {
	if e.mode != scopeNone && m == e.bound {
		return e.evaluateScoped(m)
	}
	return e.evaluateFull(m)
}

// BeginSuffix implements core.ScopedEvaluator: cache activations entering
// layer layerIdx, the boundary below which m will not change.
func (e *SuffixEvaluator) BeginSuffix(m *nn.Sequential, layerIdx int) {
	e.begin(m, layerIdx, scopeSuffix, nil)
}

// BeginPrune implements core.ScopedEvaluator: cache the output of the
// Prunable layer at layerIdx. Pruning a unit zeroes exactly its output
// channel, so Evaluate masks the cached activations with the layer's
// current prune flags instead of re-running the layer — bit-identical to
// recomputation, and a revert simply un-masks (DESIGN.md §9).
func (e *SuffixEvaluator) BeginPrune(m *nn.Sequential, layerIdx int) {
	p, ok := m.Layer(layerIdx).(nn.Prunable)
	if !ok {
		panic(fmt.Sprintf("metrics: BeginPrune layer %d (%s) is not prunable", layerIdx, m.Layer(layerIdx).Name()))
	}
	e.begin(m, layerIdx+1, scopePrune, p)
}

// begin computes and caches the boundary activations of every batch.
func (e *SuffixEvaluator) begin(m *nn.Sequential, boundary int, mode scopeMode, p nn.Prunable) {
	e.EndScope()
	// Route the prefix (and later every suffix replay) through reusable
	// per-layer buffers: inside the scope each batch's activations are
	// consumed before the next batch is forwarded, so retention is safe.
	m.SetEvalReuse(true)
	n := e.ds.Len()
	e.acts = e.acts[:0]
	bi := 0
	for lo := 0; lo < n; lo += e.batch {
		hi := lo + e.batch
		if hi > n {
			hi = n
		}
		e.x, e.labels = e.ds.BatchInto(lo, hi, e.x, e.labels)
		b := m.ForwardTo(boundary, e.x)
		// The boundary tensor is a loan (layer scratch, or the batch buffer
		// itself when the boundary is the input): copy it into an owned,
		// batch-keyed cache buffer.
		act := e.arena.GetIndexedLike("act", bi, b)
		act.CopyFrom(b)
		e.acts = append(e.acts, act)
		bi++
	}
	e.mode = mode
	e.bound = m
	e.boundary = boundary
	e.prunable = p
}

// EndScope implements core.ScopedEvaluator. The activation cache buffers
// are kept for the next scope; the model goes back to freshly-allocated
// inference outputs.
func (e *SuffixEvaluator) EndScope() {
	if e.mode == scopeNone {
		return
	}
	e.bound.SetEvalReuse(false)
	e.mode = scopeNone
	e.bound = nil
	e.prunable = nil
	e.acts = e.acts[:0]
}

// evaluateScoped replays only the suffix layers on the cached boundary
// activations.
func (e *SuffixEvaluator) evaluateScoped(m *nn.Sequential) float64 {
	n := e.ds.Len()
	if n == 0 {
		return 0
	}
	correct := 0
	for bi, act := range e.acts {
		in := act
		if e.mode == scopePrune {
			masked := e.arena.GetLike("masked", act)
			masked.CopyFrom(act)
			e.maskPruned(masked)
			in = masked
		}
		out := m.ForwardFrom(e.boundary, in)
		e.preds = nn.ArgmaxInto(e.preds, out)
		labs := e.labs[bi*e.batch:]
		for i, p := range e.preds {
			if p == labs[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}

// maskPruned zeroes the channels of currently-pruned units in a cached
// boundary activation of shape (N, units, ...). A pruned unit's parameters
// are all zero, so its recomputed output channel would be exactly +0.0 —
// which is what the mask writes.
func (e *SuffixEvaluator) maskPruned(act *tensor.Tensor) {
	n, units := act.Dim(0), act.Dim(1)
	hw := act.Len() / (n * units)
	for u := 0; u < units; u++ {
		if !e.prunable.UnitPruned(u) {
			continue
		}
		for s := 0; s < n; s++ {
			ch := act.Data[(s*units+u)*hw : (s*units+u+1)*hw]
			for i := range ch {
				ch[i] = 0
			}
		}
	}
}

// evaluateFull is the unscoped path: a plain batched forward pass with
// reusable buffers, returning exactly what Accuracy returns.
func (e *SuffixEvaluator) evaluateFull(m *nn.Sequential) float64 {
	n := e.ds.Len()
	if n == 0 {
		return 0
	}
	correct := 0
	for lo := 0; lo < n; lo += e.batch {
		hi := lo + e.batch
		if hi > n {
			hi = n
		}
		e.x, e.labels = e.ds.BatchInto(lo, hi, e.x, e.labels)
		e.preds = nn.ArgmaxInto(e.preds, m.Forward(e.x, false))
		for i, p := range e.preds {
			if p == e.labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(n)
}
