package metrics

import (
	"fmt"
	"math"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// ReportQuant selects the numeric representation of a client's recorded
// activation report (DESIGN.md §14). Float64 is the reference path —
// LocalActivations verbatim; Int8 quantizes the recorded vector through an
// affine (scale, zero-point) map before it is ranked, voted on, or shipped.
// Int8 is the single lossy boundary of the report path; everything
// downstream of the quantizer (ranking, voting, wire codecs) is lossless.
type ReportQuant int

const (
	// ReportFloat64 records activations at full float64 precision.
	ReportFloat64 ReportQuant = iota
	// ReportInt8 records activations as affine-quantized int8 codes.
	ReportInt8
)

// String implements fmt.Stringer (and flag.Value-style printing).
func (q ReportQuant) String() string {
	switch q {
	case ReportFloat64:
		return "float64"
	case ReportInt8:
		return "int8"
	default:
		return fmt.Sprintf("ReportQuant(%d)", int(q))
	}
}

// ParseReportQuant parses the -report-quant flag value.
func ParseReportQuant(s string) (ReportQuant, error) {
	switch s {
	case "float64", "f64", "":
		return ReportFloat64, nil
	case "int8", "i8":
		return ReportInt8, nil
	default:
		return 0, fmt.Errorf("metrics: unknown report quantization %q (want float64 or int8)", s)
	}
}

// QuantActs is an int8-quantized activation vector together with its affine
// dequantization parameters: the recorded activation of unit i is
// approximately Zero + Scale·(Q[i]+128). Zero is the dequantized value of
// the lowest code (−128), i.e. the minimum of the source vector, so the
// representable range is exactly [Zero, Zero+255·Scale]. A constant source
// vector (or an empty one) quantizes to Scale 0 with every code at −128 and
// dequantizes exactly.
//
// Because the affine map is monotonic (Scale ≥ 0), ordering neurons by code
// is the same as ordering them by dequantized activation — which is why the
// pruning defense can rank directly on Q (core.RanksFromQuantized) without
// ever materializing float64s.
type QuantActs struct {
	Scale float64
	Zero  float64
	Q     []int8
}

// QuantizeActivations quantizes a recorded activation vector into a freshly
// allocated QuantActs.
func QuantizeActivations(acts []float64) QuantActs {
	var q QuantActs
	q.Quantize(acts)
	return q
}

// Quantize requantizes q from acts in place, reusing q.Q when it has
// capacity — the warm path performs no allocations. Values must be finite;
// activations are post-ReLU means, so this holds by construction.
func (q *QuantActs) Quantize(acts []float64) {
	if cap(q.Q) < len(acts) {
		q.Q = make([]int8, len(acts))
	}
	q.Q = q.Q[:len(acts)]
	if len(acts) == 0 {
		q.Scale, q.Zero = 0, 0
		return
	}
	lo, hi := acts[0], acts[0]
	for _, a := range acts[1:] {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	q.Zero = lo
	q.Scale = (hi - lo) / 255
	if q.Scale == 0 {
		for i := range q.Q {
			q.Q[i] = -128
		}
		return
	}
	inv := 1 / q.Scale
	for i, a := range acts {
		code := math.Round((a - lo) * inv)
		// Clamp defensively: rounding keeps codes in [0,255] for finite
		// inputs, but a belt keeps bad data from wrapping the int8.
		if code < 0 {
			code = 0
		} else if code > 255 {
			code = 255
		}
		q.Q[i] = int8(int(code) - 128)
	}
}

// Dequantize returns the reconstructed activation vector.
func (q QuantActs) Dequantize() []float64 {
	return q.DequantizeInto(nil)
}

// DequantizeInto reconstructs the activation vector into dst (reused when
// it has capacity) and returns it. The reconstruction error of each entry
// is at most Scale/2 — half a quantization step.
func (q QuantActs) DequantizeInto(dst []float64) []float64 {
	if cap(dst) < len(q.Q) {
		dst = make([]float64, len(q.Q))
	}
	dst = dst[:len(q.Q)]
	for i, c := range q.Q {
		dst[i] = q.Zero + q.Scale*float64(int(c)+128)
	}
	return dst
}

// RecordQuantActivations is the int8 activation recorder: it records the
// paper's per-neuron average activation statistic (LocalActivations) for
// the Prunable layer at layerIdx and accumulates it into q's affine int8
// representation. q's buffers are reused across calls.
func RecordQuantActivations(q *QuantActs, m *nn.Sequential, layerIdx int, ds *dataset.Dataset, batch int) {
	q.Quantize(LocalActivations(m, layerIdx, ds, batch))
}
