//go:build !race

package metrics

import (
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
)

// Allocation-regression gates for the warm suffix-evaluation path
// (ISSUE 3): once a scope is warm, every Evaluate replays only the suffix
// layers through reusable arena buffers and allocates nothing. Workers are
// pinned to 1 (fanning out allocates its goroutines) and the gates are
// excluded under the race detector, whose instrumentation allocates.

func allocFixture() (*nn.Sequential, *dataset.Dataset) {
	_, test := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 1, TestPerClass: 10, Seed: 78})
	rng := rand.New(rand.NewSource(79))
	return nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng), test
}

func TestPruneScopedEvaluateWarmAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	m, ds := allocFixture()
	li := m.LastConvIndex()
	e := NewSuffixEvaluator(ds, 32)
	e.BeginPrune(m, li)
	defer e.EndScope()
	m.PruneModelUnit(li, 3)
	e.Evaluate(m) // warm: arena buffers, preds slice
	e.Evaluate(m)
	if allocs := testing.AllocsPerRun(10, func() { e.Evaluate(m) }); allocs != 0 {
		t.Errorf("warm prune-scoped Evaluate: %v allocs/op, want 0", allocs)
	}
}

func TestSuffixScopedEvaluateWarmAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	m, ds := allocFixture()
	li := -1 // first dense layer: the AW sweep's second target
	for i := 0; i < m.NumLayers(); i++ {
		if _, ok := m.Layer(i).(*nn.Dense); ok {
			li = i
			break
		}
	}
	e := NewSuffixEvaluator(ds, 32)
	e.BeginSuffix(m, li)
	defer e.EndScope()
	e.Evaluate(m)
	e.Evaluate(m)
	if allocs := testing.AllocsPerRun(10, func() { e.Evaluate(m) }); allocs != 0 {
		t.Errorf("warm suffix-scoped Evaluate: %v allocs/op, want 0", allocs)
	}
}

// The guarded prune loop around the evaluator — capture, prune, evaluate,
// restore — is the PruneToThreshold hot path; with a reused snapshot it
// must also be allocation-free once warm.
func TestGuardedPruneStepWarmAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	m, ds := allocFixture()
	li := m.LastConvIndex()
	e := NewSuffixEvaluator(ds, 32)
	e.BeginPrune(m, li)
	defer e.EndScope()
	var snap nn.UnitSnapshot
	step := func() {
		snap = m.CaptureUnit(li, 5, snap)
		m.PruneModelUnit(li, 5)
		e.Evaluate(m)
		m.RestoreUnit(snap)
	}
	step()
	step()
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Errorf("warm guarded prune step: %v allocs/op, want 0", allocs)
	}
}

// The int8 report path (ISSUE 8): once the code buffer is sized, warm
// requantization and dequantization move no memory at all, and recording
// through the quantizer costs exactly what the float64 recorder costs.
func TestQuantizeWarmAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	acts := make([]float64, 512)
	for i := range acts {
		acts[i] = rng.NormFloat64()
	}
	var q QuantActs
	q.Quantize(acts)
	if allocs := testing.AllocsPerRun(10, func() { q.Quantize(acts) }); allocs != 0 {
		t.Errorf("warm Quantize: %v allocs/op, want 0", allocs)
	}
	dst := q.Dequantize()
	if allocs := testing.AllocsPerRun(10, func() { dst = q.DequantizeInto(dst) }); allocs != 0 {
		t.Errorf("warm DequantizeInto: %v allocs/op, want 0", allocs)
	}
}

func TestRecordQuantActivationsAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	m, ds := allocFixture()
	li := m.LastConvIndex()
	var q QuantActs
	RecordQuantActivations(&q, m, li, ds, 32)
	RecordQuantActivations(&q, m, li, ds, 32)
	float64Path := testing.AllocsPerRun(10, func() { LocalActivations(m, li, ds, 32) })
	int8Path := testing.AllocsPerRun(10, func() { RecordQuantActivations(&q, m, li, ds, 32) })
	if int8Path > float64Path {
		t.Errorf("warm int8 recording: %v allocs/op vs %v for float64; quantization must add none",
			int8Path, float64Path)
	}
}

// The plain metric loops (Accuracy, MeanLoss, LocalActivations) now run
// their batches on the model's reusable eval buffers (ISSUE 7): per call
// they still allocate their small batch/label/result buffers, but the
// per-batch cost must be zero — evaluating 4× as many batches may not
// allocate a single byte more. Measured against a warm model so the layer
// arenas are sized.
func TestMetricLoopsBatchesAllocFree(t *testing.T) {
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	_, testAll := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 1, TestPerClass: 13, Seed: 80})
	rng := rand.New(rand.NewSource(81))
	m := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	// Exact batch multiples, so the comparison isolates the per-batch cost
	// (a ragged tail batch legitimately resizes the input buffers once).
	const batch = 32
	test := &dataset.Dataset{Shape: testAll.Shape, Classes: testAll.Classes, Samples: testAll.Samples[:4*batch]}
	one := &dataset.Dataset{Shape: testAll.Shape, Classes: testAll.Classes, Samples: testAll.Samples[:batch]}
	li := m.LastConvIndex()

	cases := []struct {
		name string
		eval func(ds *dataset.Dataset)
	}{
		{"Accuracy", func(ds *dataset.Dataset) { Accuracy(m, ds, batch) }},
		{"MeanLoss", func(ds *dataset.Dataset) { MeanLoss(m, ds, batch) }},
		{"LocalActivations", func(ds *dataset.Dataset) { LocalActivations(m, li, ds, batch) }},
	}
	for _, c := range cases {
		c.eval(test) // warm the model's eval arenas at full batch size
		c.eval(one)
		perCallOne := testing.AllocsPerRun(10, func() { c.eval(one) })
		perCallAll := testing.AllocsPerRun(10, func() { c.eval(test) })
		if perCallAll > perCallOne {
			t.Errorf("%s: %v allocs over %d batches vs %v over 1 batch; extra batches must be allocation-free",
				c.name, perCallAll, (test.Len()+batch-1)/batch, perCallOne)
		}
	}
}
