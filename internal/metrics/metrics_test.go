package metrics

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// constantModel always predicts the same class by biasing the final layer.
func constantModel(class, classes int) *nn.Sequential {
	rng := rand.New(rand.NewSource(1))
	d := nn.NewDense("fc", 16*16, classes, rng)
	d.W.Value.Zero()
	d.B.Value.Zero()
	d.B.Value.Data[class] = 10
	return nn.NewSequential(nn.NewFlatten("flat"), d)
}

func tinyDS(perClass int, seed int64) (*dataset.Dataset, *dataset.Dataset) {
	return dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: perClass, TestPerClass: perClass, Seed: seed})
}

func TestAccuracyConstantPredictor(t *testing.T) {
	_, test := tinyDS(5, 2)
	m := constantModel(3, 10)
	got := Accuracy(m, test, 0)
	if math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("constant predictor accuracy %g, want 0.1", got)
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	m := constantModel(0, 10)
	empty := &dataset.Dataset{Shape: dataset.Shape{C: 1, H: 16, W: 16}, Classes: 10}
	if got := Accuracy(m, empty, 0); got != 0 {
		t.Fatalf("accuracy on empty dataset = %g, want 0", got)
	}
}

func TestAccuracyBatchBoundaries(t *testing.T) {
	_, test := tinyDS(5, 3)
	m := constantModel(7, 10)
	// Different batch sizes must give the same result.
	a := Accuracy(m, test, 7)
	b := Accuracy(m, test, 50)
	c := Accuracy(m, test, 1)
	if a != b || b != c {
		t.Fatalf("accuracy depends on batch size: %g %g %g", a, b, c)
	}
}

func TestAttackSuccessRateConstantTarget(t *testing.T) {
	_, test := tinyDS(5, 4)
	cfg := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(1, test.Shape),
		VictimLabel: 9,
		TargetLabel: 4,
	}
	// A model that always predicts the attack target has AA = 1.
	if got := AttackSuccessRate(constantModel(4, 10), test, cfg, 0); got != 1 {
		t.Fatalf("AA = %g, want 1", got)
	}
	// A model that never predicts it has AA = 0.
	if got := AttackSuccessRate(constantModel(5, 10), test, cfg, 0); got != 0 {
		t.Fatalf("AA = %g, want 0", got)
	}
}

func TestMeanLossUniformPredictor(t *testing.T) {
	_, test := tinyDS(4, 5)
	// Zero weights and biases give uniform logits: loss = ln(10).
	m := constantModel(0, 10)
	m.Layer(1).(*nn.Dense).B.Value.Zero()
	got := MeanLoss(m, test, 0)
	if math.Abs(got-math.Log(10)) > 1e-9 {
		t.Fatalf("uniform loss = %g, want ln(10)=%g", got, math.Log(10))
	}
}

func TestLocalActivationsMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	_, test := tinyDS(3, 7)
	m := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	li := m.LastConvIndex()
	got := LocalActivations(m, li, test, 8)
	// Manual: single full-batch pass.
	x, _ := test.Batch(0, test.Len())
	acts := m.ForwardActivations(x)
	units := m.Layer(li).(nn.Prunable).Units()
	want := nn.UnitMeanActivations(acts[li], units)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("unit %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestLocalActivationsRejectsNonPrunable(t *testing.T) {
	_, test := tinyDS(2, 8)
	m := constantModel(0, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("non-prunable layer accepted")
		}
	}()
	LocalActivations(m, 0, test, 0) // layer 0 is Flatten
}

// Sanity: a unit whose filter is zeroed reports zero activation.
func TestLocalActivationsZeroForDeadUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	_, test := tinyDS(2, 10)
	m := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	li := m.LastConvIndex()
	m.PruneModelUnit(li, 3)
	acts := LocalActivations(m, li, test, 0)
	if acts[3] != 0 {
		t.Fatalf("dead unit activation %g, want 0", acts[3])
	}
}
