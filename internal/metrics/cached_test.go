package metrics

import (
	"math"
	"math/rand"
	"testing"

	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/nn"
)

// Equivalence of the cached SuffixEvaluator against the naive metrics
// (ISSUE 3): every score it returns — unscoped, suffix-scoped or
// prune-scoped — must be bit-identical to a fresh full forward pass.

func suffixFixture(t *testing.T) (*nn.Sequential, *dataset.Dataset, *dataset.Dataset, dataset.PoisonConfig) {
	t.Helper()
	_, test := dataset.GenSynthMNIST(dataset.GenConfig{TrainPerClass: 2, TestPerClass: 15, Seed: 73})
	rng := rand.New(rand.NewSource(74))
	m := nn.NewSmallCNN(nn.Input{C: 1, H: 16, W: 16}, 10, rng)
	poison := dataset.PoisonConfig{
		Trigger:     dataset.PixelPattern(3, dataset.Shape{C: 1, H: 16, W: 16}),
		VictimLabel: 9,
		TargetLabel: 2,
	}
	return m, test, test, poison
}

func wantBits(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: %v, want %v (bitwise)", what, got, want)
	}
}

func TestSuffixEvaluatorUnscopedMatchesAccuracy(t *testing.T) {
	m, ds, _, _ := suffixFixture(t)
	e := NewSuffixEvaluator(ds, 0)
	for i := 0; i < 2; i++ { // second call reuses warm buffers
		wantBits(t, "unscoped Evaluate", e.Evaluate(m), Accuracy(m, ds, 0))
	}
}

func TestCachedASRMatchesAttackSuccessRate(t *testing.T) {
	m, _, test, poison := suffixFixture(t)
	e := NewCachedASR(test, poison, 0)
	wantBits(t, "cached ASR", e.Evaluate(m), AttackSuccessRate(m, test, poison, 0))
	if e.Dataset().Len() == 0 {
		t.Fatal("memoized poisoned test set is empty")
	}
}

func TestSuffixScopeBitIdentical(t *testing.T) {
	m, ds, _, _ := suffixFixture(t)
	e := NewSuffixEvaluator(ds, 17) // odd batch: exercises a short tail batch
	// AW-style scopes: mutate only the boundary layer's weights.
	for _, li := range []int{m.LastConvIndex(), m.NumLayers() - 1} {
		e.BeginSuffix(m, li)
		w := m.Layer(li).(interface{ Params() []*nn.Param }).Params()[0].Value
		for step := 0; step < 4; step++ {
			for i := step; i < w.Len(); i += 5 {
				w.Data[i] *= 0.5
			}
			wantBits(t, "suffix-scoped Evaluate", e.Evaluate(m), Accuracy(m, ds, 17))
		}
		e.EndScope()
		wantBits(t, "after EndScope", e.Evaluate(m), Accuracy(m, ds, 17))
	}
}

func TestPruneScopeBitIdentical(t *testing.T) {
	m, ds, _, _ := suffixFixture(t)
	li := m.LastConvIndex()
	e := NewSuffixEvaluator(ds, 0)
	e.BeginPrune(m, li)
	defer e.EndScope()
	units := m.Layer(li).(nn.Prunable).Units()
	order := rand.New(rand.NewSource(75)).Perm(units)
	for _, u := range order[:units-1] {
		m.PruneModelUnit(li, u)
		wantBits(t, "prune-scoped Evaluate", e.Evaluate(m), Accuracy(m, ds, 0))
	}
}

func TestPruneScopeRevertBitIdentical(t *testing.T) {
	m, ds, _, _ := suffixFixture(t)
	li := m.LastConvIndex()
	e := NewSuffixEvaluator(ds, 0)
	e.BeginPrune(m, li)
	defer e.EndScope()
	before := e.Evaluate(m)
	snap := m.CaptureUnit(li, 6, nn.UnitSnapshot{})
	m.PruneModelUnit(li, 6)
	wantBits(t, "pruned", e.Evaluate(m), Accuracy(m, ds, 0))
	m.RestoreUnit(snap)
	// A revert only un-masks: the cached prefix stays valid and the score
	// returns to the pre-prune value exactly.
	wantBits(t, "after restore", e.Evaluate(m), before)
	wantBits(t, "after restore vs naive", e.Evaluate(m), Accuracy(m, ds, 0))
}

func TestPruneScopeWithBatchNormSuffix(t *testing.T) {
	_, test := dataset.GenSynthCIFAR(dataset.GenConfig{TrainPerClass: 1, TestPerClass: 6, Seed: 76})
	rng := rand.New(rand.NewSource(77))
	m := nn.NewMiniVGG(nn.Input{C: 3, H: 16, W: 16}, 10, rng)
	li := -1 // first conv directly followed by a BatchNorm
	for i := 0; i < m.NumLayers()-1; i++ {
		if _, ok := m.Layer(i).(*nn.Conv2D); ok {
			if _, ok := m.Layer(i + 1).(*nn.BatchNorm2D); ok {
				li = i
				break
			}
		}
	}
	if li < 0 {
		t.Fatal("MiniVGG has no conv+BN pair")
	}
	e := NewSuffixEvaluator(test, 0)
	e.BeginPrune(m, li)
	defer e.EndScope()
	for _, u := range []int{0, 3, 5} {
		m.PruneModelUnit(li, u) // prunes the BN channel too
		wantBits(t, "prune with BN suffix", e.Evaluate(m), Accuracy(m, test, 0))
	}
}

func TestScopedEvaluatorFallsBackForOtherModels(t *testing.T) {
	m, ds, _, _ := suffixFixture(t)
	other := m.Clone()
	other.Params()[0].Value.Data[0] += 1
	e := NewSuffixEvaluator(ds, 0)
	e.BeginPrune(m, m.LastConvIndex())
	defer e.EndScope()
	wantBits(t, "other model inside scope", e.Evaluate(other), Accuracy(other, ds, 0))
	// The scope on m must still be intact afterwards.
	m.PruneModelUnit(m.LastConvIndex(), 1)
	wantBits(t, "scoped model after fallback", e.Evaluate(m), Accuracy(m, ds, 0))
}
