// Package fedcleanse is a Go implementation of the post-training backdoor
// defense for federated learning from "Toward Cleansing Backdoored Neural
// Networks in Federated Learning" (Wu, Yang, Zhu, Mitra — ICDCS 2022),
// together with everything needed to study it end to end: a from-scratch
// CNN training stack, a federated-learning simulator with backdoor attacks
// (BadNets pixel patterns, model replacement, DBA), Byzantine-robust
// aggregation baselines, and a Neural Cleanse baseline.
//
// The defense (Algorithm 1 of the paper) cleans a trained global model in
// three steps:
//
//  1. Federated pruning — clients report neuron-dormancy ranks (RAP) or
//     prune votes (MVP) computed from local activations; the server prunes
//     dormant neurons until validation accuracy would drop.
//  2. Federated fine-tuning (optional) — a few FedAvg rounds recover the
//     benign accuracy lost to pruning.
//  3. Adjusting extreme weights — weights outside μ ± Δ·σ are zeroed with
//     Δ decreased under a validation-accuracy guard.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	s := fedcleanse.MNISTScenario(9, 2) // backdoor: 9 predicted as 2
//	t := fedcleanse.Run(s)              // federated training under attack
//	model, report := t.Defend(fedcleanse.DefaultPipelineConfig())
//
// This package is a facade over the implementation packages in internal/;
// it re-exports the stable API surface.
package fedcleanse

import (
	"github.com/fedcleanse/fedcleanse/internal/core"
	"github.com/fedcleanse/fedcleanse/internal/dataset"
	"github.com/fedcleanse/fedcleanse/internal/eval"
	"github.com/fedcleanse/fedcleanse/internal/fl"
	"github.com/fedcleanse/fedcleanse/internal/metrics"
	"github.com/fedcleanse/fedcleanse/internal/neuralcleanse"
	"github.com/fedcleanse/fedcleanse/internal/nn"
	"github.com/fedcleanse/fedcleanse/internal/obs"
	"github.com/fedcleanse/fedcleanse/internal/parallel"
	"github.com/fedcleanse/fedcleanse/internal/robust"
	"github.com/fedcleanse/fedcleanse/internal/transport"
)

// Observability (DESIGN.md §11). Every library path is instrumented
// against a process-wide nop logger and a shared metrics registry; both
// are inert until a caller opts in, and neither influences model
// arithmetic, worker scheduling, or RNG draws.
type (
	// MetricsRegistry is a set of named atomic counters, gauges and
	// fixed-bucket histograms whose warm operations allocate nothing.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// OpsServer is a running /metrics + /healthz + pprof HTTP endpoint.
	OpsServer = obs.OpsServer
)

var (
	// Metrics is the registry all instrumented library paths record into.
	Metrics = obs.Default
	// NewMetricsRegistry builds an empty private registry.
	NewMetricsRegistry = obs.NewRegistry
	// SetLogger installs the process-wide structured event logger
	// (nil restores the silent default).
	SetLogger = obs.SetLogger
	// ServeOps starts the ops HTTP endpoint over a registry.
	ServeOps = obs.ServeOps
)

// Parallel execution knobs. Simulation and kernel hot paths fan out over a
// bounded worker pool; results are bit-identical for any worker count
// (DESIGN.md §7). The count defaults to GOMAXPROCS and can be pinned via
// SetWorkers or the FEDCLEANSE_WORKERS environment variable.
var (
	// Workers reports the effective worker count.
	Workers = parallel.Workers
	// SetWorkers pins the worker count process-wide (<= 0 restores the
	// automatic default) and returns the previous override.
	SetWorkers = parallel.SetWorkers
)

// Model and training stack.
type (
	// Model is a feed-forward neural network (a stack of layers).
	Model = nn.Sequential
	// ModelInput is the per-sample input geometry of a model.
	ModelInput = nn.Input
	// SGD is the local optimizer used by federated clients.
	SGD = nn.SGD
	// Backend selects the numeric precision of model arithmetic
	// (Model.SetBackend); aggregation and checkpoints are float64 either
	// way. See DESIGN.md §13.
	Backend = nn.Backend
)

// Numeric backends and their flag parser.
const (
	// Float64 is the canonical reference arithmetic (the default).
	Float64 = nn.Float64
	// Float32 runs layer kernels in float32 for roughly halved memory
	// traffic; converts at the model boundary.
	Float32 = nn.Float32
)

// ParseBackend parses a -backend flag spelling ("float64" or "float32").
var ParseBackend = nn.ParseBackend

// Report precision (DESIGN.md §14). Clients can record defense-report
// activations as affine-quantized int8 instead of float64; quantization
// is monotonic, so prune ordering — all the defense consumes — is
// preserved exactly (pinned by the MNIST parity test).
type (
	// ReportQuant selects the activation-recording precision of defense
	// reports (Scenario.ReportQuant, -report-quant); the zero value is
	// the float64 reference.
	ReportQuant = metrics.ReportQuant
	// QuantActs is an affine (scale, zero-point) int8 encoding of a
	// per-unit activation vector.
	QuantActs = metrics.QuantActs
)

// Report precisions and their flag parser.
const (
	// ReportFloat64 records report activations at full precision.
	ReportFloat64 = metrics.ReportFloat64
	// ReportInt8 records report activations as affine-quantized int8,
	// shrinking report payloads and wire traffic.
	ReportInt8 = metrics.ReportInt8
)

var (
	// ParseReportQuant parses a -report-quant flag spelling ("float64"
	// or "int8").
	ParseReportQuant = metrics.ParseReportQuant
	// QuantizeActivations quantizes an activation vector to int8.
	QuantizeActivations = metrics.QuantizeActivations
)

// Model constructors (the paper's architectures).
var (
	// NewSmallCNN is the paper's 8/16-channel two-conv MNIST network.
	NewSmallCNN = nn.NewSmallCNN
	// NewLargeCNN is the paper's 20/50-channel variant (Table VI).
	NewLargeCNN = nn.NewLargeCNN
	// NewFashionCNN is the three-conv Fashion-MNIST network.
	NewFashionCNN = nn.NewFashionCNN
	// NewMiniVGG is the width-reduced VGG11 stand-in for CIFAR.
	NewMiniVGG = nn.NewMiniVGG
)

// Datasets, partitioning and backdoor triggers.
type (
	// Dataset is an in-memory labeled image collection.
	Dataset = dataset.Dataset
	// DatasetShape is the image geometry of a dataset.
	DatasetShape = dataset.Shape
	// GenConfig controls synthetic dataset generation.
	GenConfig = dataset.GenConfig
	// Trigger is a BadNets-style pixel-pattern backdoor.
	Trigger = dataset.Trigger
	// PoisonConfig describes a backdoor task (trigger, victim, target).
	PoisonConfig = dataset.PoisonConfig
)

// Dataset and trigger constructors.
var (
	// GenSynthMNIST generates the MNIST stand-in (see DESIGN.md §2).
	GenSynthMNIST = dataset.GenSynthMNIST
	// GenSynthFashion generates the Fashion-MNIST stand-in.
	GenSynthFashion = dataset.GenSynthFashion
	// GenSynthCIFAR generates the CIFAR-10 stand-in.
	GenSynthCIFAR = dataset.GenSynthCIFAR
	// PartitionKLabel splits a dataset across clients, K labels each.
	PartitionKLabel = dataset.PartitionKLabel
	// PixelPattern builds the paper's n-pixel corner triggers.
	PixelPattern = dataset.PixelPattern
	// DBAGlobalPattern builds the Distributed Backdoor Attack trigger.
	DBAGlobalPattern = dataset.DBAGlobalPattern
)

// Federated learning simulator.
type (
	// FLConfig bundles federated training hyperparameters.
	FLConfig = fl.Config
	// Server drives federated rounds and implements the defense's Tuner.
	Server = fl.Server
	// Client is an honest federated participant.
	Client = fl.Client
	// Attacker is a model-replacement backdoor attacker.
	Attacker = fl.Attacker
	// Participant is any federated client, benign or malicious.
	Participant = fl.Participant
	// Aggregator combines per-round client updates.
	Aggregator = fl.Aggregator
	// DropPolicy injects client failures into federated rounds.
	DropPolicy = fl.DropPolicy
	// RoundResult is one round's failure telemetry: who was selected, who
	// responded, who dropped out, and whether quorum was met.
	RoundResult = fl.RoundResult
)

// Population scale (DESIGN.md §12). A Registry holds client IDs only and
// materializes per-round cohorts through a factory; streaming rounds fold
// each update into a coordinate-range-sharded running aggregate as it
// arrives, bit-identical to the batch path at any shard count, with server
// memory bounded by the streaming window rather than the cohort.
type (
	// Registry is an ID-only client population with O(cohort) sampling.
	Registry = fl.Registry
	// ClientFactory materializes a participant for a sampled client ID.
	ClientFactory = fl.ClientFactory
	// StreamingAggregator is an Aggregator that can fold updates one at a
	// time into a sharded running aggregate.
	StreamingAggregator = fl.StreamingAggregator
	// Fold is one round's in-progress streaming aggregation.
	Fold = fl.Fold
	// SyntheticClient is a dataset-free load-generation participant.
	SyntheticClient = fl.SyntheticClient
)

var (
	// NewRegistry builds an empty client registry over a factory.
	NewRegistry = fl.NewRegistry
	// NewRegistryServer builds a server that samples each round's cohort
	// from a registry instead of holding a fixed participant slice.
	NewRegistryServer = fl.NewRegistryServer
)

// FL constructors.
var (
	// NewServer builds a federated server over a participant population.
	NewServer = fl.NewServer
	// NewClient builds an honest client.
	NewClient = fl.NewClient
	// NewAttacker builds a backdoor attacker.
	NewAttacker = fl.NewAttacker
	// NewDBAAttackers builds the DBA attacker cohort.
	NewDBAAttackers = fl.NewDBAAttackers
)

// The defense (the paper's contribution).
type (
	// PipelineConfig parameterizes Algorithm 1 end to end.
	PipelineConfig = core.PipelineConfig
	// PruneMethod selects RAP or MVP.
	PruneMethod = core.PruneMethod
	// AWConfig parameterizes the extreme-weight adjustment.
	AWConfig = core.AWConfig
	// DefenseReport is the stage-by-stage telemetry of a pipeline run.
	DefenseReport = core.Report
	// ReportClient is the defense's view of a federated client.
	ReportClient = core.ReportClient
	// ScopedEvaluator scores candidate models for the defense's
	// mutate-then-evaluate loops and accepts mutation scopes so
	// implementations can evaluate incrementally.
	ScopedEvaluator = core.ScopedEvaluator
	// Evaluator adapts a plain scoring function to ScopedEvaluator (full
	// forward pass per evaluation).
	Evaluator = core.Evaluator
	// SuffixEvaluator is the cached ScopedEvaluator: inside a mutation
	// scope it forwards the dataset through the invariant prefix once and
	// replays only the suffix layers per evaluation, bit-identical to a
	// full forward pass.
	SuffixEvaluator = metrics.SuffixEvaluator
)

// Defense methods and entry points.
const (
	// RAP is Rank Aggregation-based Pruning.
	RAP = core.RAP
	// MVP is Majority Voting-based Pruning.
	MVP = core.MVP
)

var (
	// DefaultPipelineConfig is the paper's "All" mode configuration.
	DefaultPipelineConfig = core.DefaultPipelineConfig
	// RunPipeline executes Algorithm 1 on a model in place.
	RunPipeline = core.RunPipeline
	// AdjustWeights runs the extreme-weight adjustment on one layer.
	AdjustWeights = core.AdjustWeights
	// PruneToThreshold prunes a layer in a given order under an accuracy
	// guard.
	PruneToThreshold = core.PruneToThreshold
	// ReportClients adapts federated participants to the defense's view.
	ReportClients = fl.ReportClients
)

// Networked federation (DESIGN.md §10). RemoteClient never panics on wire
// failures: calls retry with capped exponential backoff under per-attempt
// timeouts, and a call that still fails becomes a recorded dropout in the
// round drivers, which proceed on the surviving quorum.
type (
	// RemoteClient is the server-side stub for a client reachable over HTTP.
	RemoteClient = transport.RemoteClient
	// ClientServer exposes one federated participant over HTTP.
	ClientServer = transport.ClientServer
	// RetryPolicy bounds RemoteClient's per-call retry loop.
	RetryPolicy = transport.RetryPolicy
	// RemoteOption configures a RemoteClient.
	RemoteOption = transport.RemoteOption
	// FaultInjector deterministically injects wire faults (chaos testing).
	FaultInjector = transport.FaultInjector
	// Fault is one scheduled wire failure.
	Fault = transport.Fault
	// FaultKind enumerates the injectable failure modes.
	FaultKind = transport.FaultKind
	// FaultSchedule decides which fault each exchange suffers.
	FaultSchedule = transport.Schedule
	// Fleet hosts many federated participants behind one HTTP listener
	// (paths /c/<id>/v1/update), for load generation at population scale.
	Fleet = transport.Fleet
)

// Transport constructors and options.
var (
	// NewRemoteClient builds a stub for the client server at an address.
	NewRemoteClient = transport.NewRemoteClient
	// NewClientServer wraps a participant for serving over HTTP.
	NewClientServer = transport.NewClientServer
	// NewFaultInjector builds a deterministic fault injector.
	NewFaultInjector = transport.NewFaultInjector
	// DefaultRetryPolicy is the production retry configuration.
	DefaultRetryPolicy = transport.DefaultRetryPolicy
	// WithRetryPolicy overrides a RemoteClient's retry policy.
	WithRetryPolicy = transport.WithRetryPolicy
	// WithTransport installs a custom http.RoundTripper on a RemoteClient.
	WithTransport = transport.WithTransport
	// NewFleet builds an empty participant fleet.
	NewFleet = transport.NewFleet
	// FleetClientAddr is the RemoteClient address of one fleet participant.
	FleetClientAddr = transport.FleetClientAddr
)

// Compact report wire codecs (DESIGN.md §14). Lossless, canonical
// (encode(decode(p)) == p), self-describing by a 1-byte tag; the report
// endpoints fall back to gob on the first payload byte, so mixed-version
// federations interoperate.
var (
	// AppendRanksDelta appends a varint delta-encoded rank vector.
	AppendRanksDelta = transport.AppendRanksDelta
	// DecodeRanksDelta decodes a RanksDelta payload.
	DecodeRanksDelta = transport.DecodeRanksDelta
	// AppendVoteBitmap appends a bit-packed prune-vote bitmap.
	AppendVoteBitmap = transport.AppendVoteBitmap
	// DecodeVoteBitmap decodes a VoteBitmap payload.
	DecodeVoteBitmap = transport.DecodeVoteBitmap
	// AppendActs8 appends a quantized int8 activation payload.
	AppendActs8 = transport.AppendActs8
	// DecodeActs8 decodes an Acts8 payload.
	DecodeActs8 = transport.DecodeActs8
	// AppendActs64 appends a float64 activation payload.
	AppendActs64 = transport.AppendActs64
	// DecodeActs64 decodes an Acts64 payload.
	DecodeActs64 = transport.DecodeActs64
)

// Experiment harness (paper scenarios).
type (
	// Scenario describes one federated backdoor experiment.
	Scenario = eval.Scenario
	// Trained is a built and federatedly trained scenario.
	Trained = eval.Trained
)

var (
	// MNISTScenario is the paper's MNIST-scale setting.
	MNISTScenario = eval.MNISTScenario
	// FashionScenario is the Fashion-MNIST-scale setting.
	FashionScenario = eval.FashionScenario
	// CIFARScenario is the CIFAR-scale DBA setting.
	CIFARScenario = eval.CIFARScenario
	// BuildScenario constructs a scenario's population without training.
	BuildScenario = eval.Build
	// Run builds and trains a scenario.
	Run = eval.Run
)

// Experiment artifacts (paper tables/figures and ablations).
type (
	// ExperimentPair is one (victim, attack) label pair.
	ExperimentPair = eval.Pair
	// ResultTable is a paper-style results table.
	ResultTable = eval.Table
	// ResultFigure is a paper-style figure (named series).
	ResultFigure = eval.Figure
)

var (
	// TableI..TableVII regenerate the paper's tables (see DESIGN.md §4).
	TableI   = eval.TableI
	TableII  = eval.TableII
	TableIII = eval.TableIII
	TableIV  = eval.TableIV
	TableV   = eval.TableV
	TableVI  = eval.TableVI
	TableVII = eval.TableVII
	// AdaptiveAttackTable evaluates the §VI-B adaptive attacks.
	AdaptiveAttackTable = eval.AdaptiveAttackTable
)

// Metrics.
var (
	// Accuracy is plain test accuracy of a model on a dataset.
	Accuracy = metrics.Accuracy
	// AttackSuccessRate is the paper's AA metric.
	AttackSuccessRate = metrics.AttackSuccessRate
	// NewSuffixEvaluator builds a cached accuracy evaluator over a dataset.
	NewSuffixEvaluator = metrics.NewSuffixEvaluator
	// NewCachedASR builds a cached attack-success evaluator that poisons
	// the test set once instead of per call.
	NewCachedASR = metrics.NewCachedASR
)

// Baselines.
type (
	// Krum is the Byzantine-robust aggregation rule of Blanchard et al.
	Krum = robust.Krum
	// MultiKrum averages the best updates under the Krum score.
	MultiKrum = robust.MultiKrum
	// Bulyan composes Krum selection with a trimmed-mean reduction.
	Bulyan = robust.Bulyan
	// TrimmedMean is coordinate-wise trimmed-mean aggregation.
	TrimmedMean = robust.TrimmedMean
	// Median is coordinate-wise median aggregation.
	Median = robust.Median
	// NeuralCleanseConfig parameterizes trigger reverse-engineering.
	NeuralCleanseConfig = neuralcleanse.Config
)

var (
	// ReverseTrigger reverse-engineers a minimal trigger for one label.
	ReverseTrigger = neuralcleanse.ReverseTrigger
	// NeuralCleanseMitigate prunes neurons activated by a reversed trigger.
	NeuralCleanseMitigate = neuralcleanse.Mitigate
)
